//! Basic-block translation of SimISA into direct-threaded form.
//!
//! The interpreter in `cpu.rs` re-decodes every [`MInst`] on every dynamic
//! execution: each step pattern-matches the full instruction, unpacks
//! `Option<Reg>` memory operands, and re-derives constant properties (does
//! this `Mov` sign-extend? is this `Bin` a 64-bit add?) that were fixed at
//! compile time. This module pays that decode cost **once per static
//! instruction**: a [`TranslatedFunc`] holds one pre-decoded [`Op`] per
//! `MInst`, with
//!
//! * operands flattened (`Option<Reg>` → a `u8` with a [`NO_REG`] sentinel,
//!   folded memory operands → [`PackedMem`]),
//! * constant work folded (sign-extension of immediates, the
//!   64-bit/`f64` fast paths of `eval_bin` specialised into their own
//!   variants),
//! * the common instruction *pairs* fused into superinstructions —
//!   compare+branch ([`Op::CmpBr`]), load+arithmetic ([`Op::LoadBin`]),
//!   index-scale+load ([`Op::LeaLoad`]), global-base+dependent-load
//!   ([`Op::GloLoad`]), global-base+`f64`-memory-arithmetic
//!   ([`Op::GloFBin`]) and back-to-back register copies ([`Op::MovRR`]) —
//!   and
//! * a per-instruction *steps-to-block-end* table ([`TranslatedFunc::ste`])
//!   so the execution engine can charge fuel per straight-line segment and
//!   only fall back to per-step fuel checks for the final partial block
//!   (see `engine.rs`).
//!
//! Indexing is 1:1 with the instruction stream: `ops[i]` corresponds to
//! `instrs[i]`, and when `(i, i+1)` is fused, `ops[i + 1]` **still holds the
//! standalone translation of `instrs[i + 1]`**. A fused op is only reachable
//! through its first index; entering at `i + 1` (a trap resume re-executing
//! the faulting instruction) runs the standalone op, so the translated
//! program is re-enterable at every PC exactly like the interpreter. Fusion
//! is refused when `i + 1` is a branch target for the same reason.
//!
//! Translations are content-keyed and shared: [`TranslationCache::global`]
//! maps a hash of the module's instruction stream to an `Arc`-shared
//! [`TranslatedModule`], so every trellis fork and every campaign suffix of
//! the same compiled app (at the same opt level — different codegen means a
//! different key) reuses one translation.

use crate::image::{MachineFunction, MachineModule};
use crate::isa::{MInst, MemOp, Src, NUM_REGS};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use tinyir::interp::sext_bits;
use tinyir::{BinOp, CastOp, FCmp, ICmp, Intrinsic, Ty};

/// Sentinel for "no register" in flattened operand slots.
pub(crate) const NO_REG: u8 = 0xFF;

/// A [`MemOp`] with the `Option`s flattened out of the hot path.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PackedMem {
    pub base: u8,
    pub index: u8,
    pub scale: u8,
    pub disp: i64,
}

impl PackedMem {
    fn of(m: &MemOp) -> PackedMem {
        PackedMem {
            base: m.base.map_or(NO_REG, |r| r.0),
            index: m.index.map_or(NO_REG, |r| r.0),
            scale: m.scale,
            disp: m.disp,
        }
    }

    /// Effective address; bit-identical to [`MemOp::effective`] (same
    /// operation order, same wrapping arithmetic).
    #[inline(always)]
    pub(crate) fn ea(&self, regs: &[u64; NUM_REGS]) -> u64 {
        let mut addr = self.disp as u64;
        if self.base != NO_REG {
            addr = addr.wrapping_add(regs[self.base as usize]);
        }
        if self.index != NO_REG {
            addr = addr.wrapping_add(regs[self.index as usize].wrapping_mul(self.scale as u64));
        }
        addr
    }
}

/// A pre-decoded [`Src`].
#[derive(Clone, Copy, Debug)]
pub(crate) enum SrcK {
    Reg(u8),
    Imm(u64),
    Mem(PackedMem, u8),
    Global(u32),
}

impl SrcK {
    fn of(s: &Src) -> SrcK {
        match s {
            Src::Reg(r) => SrcK::Reg(r.0),
            Src::Imm(v) => SrcK::Imm(*v),
            Src::Mem(m, size) => SrcK::Mem(PackedMem::of(m), *size),
            Src::Global(g) => SrcK::Global(g.0),
        }
    }
}

/// One direct-threaded operation. Plain variants are 1:1 with [`MInst`]
/// (operands pre-decoded, constant work folded); the specialised variants
/// (`AddQ`/`FMul`/`FAddL`/...) encode properties `eval_bin` would otherwise
/// re-derive per step; the fused variants at the bottom cover two
/// instructions each (and account two fuel steps — see `engine.rs`).
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// `dst <- src` register copy.
    MovR { dst: u8, src: u8 },
    /// `dst <- sext(src)` register copy with sub-word sign extension.
    MovRs { dst: u8, src: u8, ty: Ty },
    /// `dst <- imm` (sign extension already folded into the constant).
    MovI { dst: u8, imm: u64 },
    /// Plain load.
    MovL { dst: u8, mem: PackedMem, size: u8 },
    /// Sign-extending load (`movsx`).
    MovLs { dst: u8, mem: PackedMem, size: u8, ty: Ty },
    /// `dst <- &global` (with the interpreter's sext quirk preserved).
    MovG { dst: u8, gid: u32, sext: Option<Ty> },
    /// Store of the low `size` bytes of `src`.
    St { src: u8, mem: PackedMem, size: u8 },
    /// Effective-address computation.
    Lea { dst: u8, mem: PackedMem },
    /// 64-bit (`I64`/`Ptr`) add/sub/mul, register or immediate rhs: the
    /// mask and sign-extension of `eval_bin` are identities at this width.
    AddQ { dst: u8, lhs: u8, rhs: u8 },
    AddQI { dst: u8, lhs: u8, imm: u64 },
    SubQ { dst: u8, lhs: u8, rhs: u8 },
    SubQI { dst: u8, lhs: u8, imm: u64 },
    MulQ { dst: u8, lhs: u8, rhs: u8 },
    /// `f64` arithmetic, register rhs.
    FAdd { dst: u8, lhs: u8, rhs: u8 },
    FSub { dst: u8, lhs: u8, rhs: u8 },
    FMul { dst: u8, lhs: u8, rhs: u8 },
    /// `f64` arithmetic with a folded 8-byte memory rhs (the CISC shape
    /// codegen emits for `load; fadd/fmul` — the inner loop of every dot
    /// product and stencil in the workload suite).
    FAddL { dst: u8, lhs: u8, mem: PackedMem },
    FMulL { dst: u8, lhs: u8, mem: PackedMem },
    /// Everything else: full `eval_bin` semantics (may trap `Fpe`).
    Bin { op: BinOp, dst: u8, lhs: u8, rhs: SrcK, ty: Ty },
    Icmp { pred: ICmp, dst: u8, lhs: u8, rhs: SrcK, ty: Ty },
    Fcmp { pred: FCmp, dst: u8, lhs: u8, rhs: SrcK, ty: Ty },
    Cast { op: CastOp, dst: u8, src: u8, from: Ty, to: Ty },
    Select { dst: u8, cond: u8, t: u8, f: u8 },
    Jmp { target: u32 },
    Jnz { cond: u8, then_t: u32, else_t: u32 },
    GetArg { dst: u8, idx: u8 },
    Call { callee: u32, args: Box<[SrcK]>, dst: u8 },
    CallIntr { which: Intrinsic, args: Box<[SrcK]>, dst: u8 },
    Ret { src: u8 },
    /// Fused `icmp; jnz` where the branch tests the compare's destination.
    /// Still writes the condition register (later code may read it).
    CmpBr { pred: ICmp, cdst: u8, lhs: u8, rhs: SrcK, ty: Ty, then_t: u32, else_t: u32 },
    /// Fused `mov dst, mem; bin bdst, dst, rhs` (load feeding arithmetic).
    LoadBin { ldst: u8, mem: PackedMem, size: u8, op: BinOp, bdst: u8, rhs: SrcK, ty: Ty },
    /// Fused `lea adst, amem; mov ldst, ldisp(adst)` (index-scale + load).
    LeaLoad { adst: u8, amem: PackedMem, ldst: u8, ldisp: i64, size: u8 },
    /// Fused `mov gdst, @g; mov ldst, mem` where `mem` addresses through
    /// the freshly materialised global base (the SpMV/gather shape: codegen
    /// reloads the array base from a global right before every indexed
    /// element access).
    GloLoad { gdst: u8, gid: u32, ldst: u8, mem: PackedMem, size: u8 },
    /// Fused `mov gdst, @g; fadd/fmul fdst, lhs, 8(mem)` — the same
    /// global-base reload feeding a folded `f64` memory operand (the
    /// `FAddL`/`FMulL` shape) instead of a plain load.
    GloFBin { gdst: u8, gid: u32, mul: bool, fdst: u8, lhs: u8, mem: PackedMem },
    /// Fused pair of plain full-width register copies (loop-carried
    /// variable rotation: `mov x', x; mov i', i` at the bottom of loops).
    MovRR { d1: u8, s1: u8, d2: u8, s2: u8 },
}

impl Op {
    /// Dynamic fuel steps this op accounts for (2 for fused pairs).
    #[inline(always)]
    pub(crate) fn cost(&self) -> u32 {
        match self {
            Op::CmpBr { .. }
            | Op::LoadBin { .. }
            | Op::LeaLoad { .. }
            | Op::GloLoad { .. }
            | Op::GloFBin { .. }
            | Op::MovRR { .. } => 2,
            _ => 1,
        }
    }

    /// True when executing this op always ends the straight-line segment.
    fn ends_segment(&self) -> bool {
        matches!(
            self,
            Op::Jmp { .. }
                | Op::Jnz { .. }
                | Op::CmpBr { .. }
                | Op::Call { .. }
                | Op::CallIntr { .. }
                | Op::Ret { .. }
        )
    }
}

/// Aggregate translation statistics, surfaced as `engine.*` telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TranslateStats {
    /// Basic blocks discovered (leaders: entry, branch targets, fall-throughs
    /// past a block ender).
    pub blocks: u64,
    /// Total ops emitted (= static instructions translated).
    pub ops: u64,
    /// Fused compare+branch pairs.
    pub fused_cmp_br: u64,
    /// Fused load+arithmetic pairs.
    pub fused_load_bin: u64,
    /// Fused index-scale+load pairs.
    pub fused_lea_load: u64,
    /// Fused global-base+dependent-memory pairs (`GloLoad` and `GloFBin`).
    pub fused_glo_load: u64,
    /// Fused register-copy pairs (`MovRR`).
    pub fused_mov_mov: u64,
}

impl TranslateStats {
    /// Accumulate another module's stats (for multi-module images).
    pub fn merge(&mut self, other: &TranslateStats) {
        self.blocks += other.blocks;
        self.ops += other.ops;
        self.fused_cmp_br += other.fused_cmp_br;
        self.fused_load_bin += other.fused_load_bin;
        self.fused_lea_load += other.fused_lea_load;
        self.fused_glo_load += other.fused_glo_load;
        self.fused_mov_mov += other.fused_mov_mov;
    }

    /// Total fused pairs of all kinds.
    pub fn fused_total(&self) -> u64 {
        self.fused_cmp_br
            + self.fused_load_bin
            + self.fused_lea_load
            + self.fused_glo_load
            + self.fused_mov_mov
    }
}

/// One translated function: pre-decoded ops plus the per-index
/// steps-to-block-end table. Both are indexed 1:1 with `instrs`.
#[derive(Debug, Default)]
pub(crate) struct TranslatedFunc {
    pub ops: Vec<Op>,
    /// `ste[i]`: fuel steps consumed executing straight-line from `i`
    /// through (and including) the block-ending op. If `fuel >= ste[i]`,
    /// the segment cannot run out of fuel before its next control event.
    pub ste: Vec<u32>,
}

/// A fully translated module, shared via [`TranslationCache`].
#[derive(Debug)]
pub struct TranslatedModule {
    pub(crate) funcs: Vec<TranslatedFunc>,
    /// Translation statistics for this module.
    pub stats: TranslateStats,
}

fn sext_ty(size: u8) -> Ty {
    match size {
        1 => Ty::I8,
        2 => Ty::I16,
        _ => Ty::I32,
    }
}

/// True when `eval_bin`'s mask and sign-extension are identities for `ty` —
/// the precondition for the `AddQ`-family specialisations.
fn full_width(ty: Ty) -> bool {
    ty.mask() == u64::MAX
}

fn decode(inst: &MInst) -> Op {
    match inst {
        MInst::Mov { dst, src, size, sext } => {
            let sx = (*sext && *size < 8).then(|| sext_ty(*size));
            match (src, sx) {
                (Src::Reg(r), None) => Op::MovR { dst: dst.0, src: r.0 },
                (Src::Reg(r), Some(ty)) => Op::MovRs { dst: dst.0, src: r.0, ty },
                // Immediates sign-extend to the same constant every time:
                // fold it now.
                (Src::Imm(v), sx) => {
                    let imm = match sx {
                        Some(ty) => sext_bits(*v, ty) as u64,
                        None => *v,
                    };
                    Op::MovI { dst: dst.0, imm }
                }
                (Src::Mem(m, sz), None) => {
                    Op::MovL { dst: dst.0, mem: PackedMem::of(m), size: *sz }
                }
                (Src::Mem(m, sz), Some(ty)) => {
                    Op::MovLs { dst: dst.0, mem: PackedMem::of(m), size: *sz, ty }
                }
                (Src::Global(g), sx) => Op::MovG { dst: dst.0, gid: g.0, sext: sx },
            }
        }
        MInst::Store { src, mem, size } => {
            Op::St { src: src.0, mem: PackedMem::of(mem), size: *size }
        }
        MInst::Lea { dst, mem } => Op::Lea { dst: dst.0, mem: PackedMem::of(mem) },
        MInst::Bin { op, dst, lhs, rhs, ty } => {
            let (d, l) = (dst.0, lhs.0);
            match (op, rhs, *ty) {
                (BinOp::Add, Src::Reg(r), t) if full_width(t) => {
                    Op::AddQ { dst: d, lhs: l, rhs: r.0 }
                }
                (BinOp::Add, Src::Imm(v), t) if full_width(t) => {
                    Op::AddQI { dst: d, lhs: l, imm: *v }
                }
                (BinOp::Sub, Src::Reg(r), t) if full_width(t) => {
                    Op::SubQ { dst: d, lhs: l, rhs: r.0 }
                }
                (BinOp::Sub, Src::Imm(v), t) if full_width(t) => {
                    Op::SubQI { dst: d, lhs: l, imm: *v }
                }
                (BinOp::Mul, Src::Reg(r), t) if full_width(t) => {
                    Op::MulQ { dst: d, lhs: l, rhs: r.0 }
                }
                (BinOp::FAdd, Src::Reg(r), Ty::F64) => Op::FAdd { dst: d, lhs: l, rhs: r.0 },
                (BinOp::FSub, Src::Reg(r), Ty::F64) => Op::FSub { dst: d, lhs: l, rhs: r.0 },
                (BinOp::FMul, Src::Reg(r), Ty::F64) => Op::FMul { dst: d, lhs: l, rhs: r.0 },
                (BinOp::FAdd, Src::Mem(m, 8), Ty::F64) => {
                    Op::FAddL { dst: d, lhs: l, mem: PackedMem::of(m) }
                }
                (BinOp::FMul, Src::Mem(m, 8), Ty::F64) => {
                    Op::FMulL { dst: d, lhs: l, mem: PackedMem::of(m) }
                }
                _ => Op::Bin { op: *op, dst: d, lhs: l, rhs: SrcK::of(rhs), ty: *ty },
            }
        }
        MInst::Icmp { pred, dst, lhs, rhs, ty } => {
            Op::Icmp { pred: *pred, dst: dst.0, lhs: lhs.0, rhs: SrcK::of(rhs), ty: *ty }
        }
        MInst::Fcmp { pred, dst, lhs, rhs, ty } => {
            Op::Fcmp { pred: *pred, dst: dst.0, lhs: lhs.0, rhs: SrcK::of(rhs), ty: *ty }
        }
        MInst::Cast { op, dst, src, from, to } => {
            Op::Cast { op: *op, dst: dst.0, src: src.0, from: *from, to: *to }
        }
        MInst::Select { dst, cond, t, f } => {
            Op::Select { dst: dst.0, cond: cond.0, t: t.0, f: f.0 }
        }
        MInst::Jmp { target } => Op::Jmp { target: *target },
        MInst::Jnz { cond, then_t, else_t } => {
            Op::Jnz { cond: cond.0, then_t: *then_t, else_t: *else_t }
        }
        MInst::GetArg { dst, idx } => Op::GetArg { dst: dst.0, idx: *idx },
        MInst::Call { callee, args, dst } => Op::Call {
            callee: callee.0,
            args: args.iter().map(SrcK::of).collect(),
            dst: dst.map_or(NO_REG, |r| r.0),
        },
        MInst::CallIntr { which, args, dst } => Op::CallIntr {
            which: *which,
            args: args.iter().map(SrcK::of).collect(),
            dst: dst.map_or(NO_REG, |r| r.0),
        },
        MInst::Ret { src } => Op::Ret { src: src.map_or(NO_REG, |r| r.0) },
    }
}

/// True when a `Mov`'s sign-extension flag is inert (it only applies to
/// sub-word sizes — the same rule `decode` uses).
fn no_sext(sext: bool, size: u8) -> bool {
    !(sext && size < 8)
}

/// Fused translation of the pair `(a, b)`, if the pair is fusible. The
/// caller has already established that `b`'s index is not a branch target.
fn fuse(a: &MInst, b: &MInst, stats: &mut TranslateStats) -> Option<Op> {
    match (a, b) {
        // icmp r, ...; jnz r — the branch consumes the fresh compare.
        (MInst::Icmp { pred, dst, lhs, rhs, ty }, MInst::Jnz { cond, then_t, else_t })
            if cond == dst =>
        {
            stats.fused_cmp_br += 1;
            Some(Op::CmpBr {
                pred: *pred,
                cdst: dst.0,
                lhs: lhs.0,
                rhs: SrcK::of(rhs),
                ty: *ty,
                then_t: *then_t,
                else_t: *else_t,
            })
        }
        // mov r, mem; bin d, r, rhs — the load feeds the arithmetic's lhs.
        (
            MInst::Mov { dst, src: Src::Mem(m, msz), size: _, sext: false },
            MInst::Bin { op, dst: bdst, lhs, rhs, ty },
        ) if lhs == dst => {
            stats.fused_load_bin += 1;
            Some(Op::LoadBin {
                ldst: dst.0,
                mem: PackedMem::of(m),
                size: *msz,
                op: *op,
                bdst: bdst.0,
                rhs: SrcK::of(rhs),
                ty: *ty,
            })
        }
        // lea a, mem; mov d, disp(a) — address computation feeding a load.
        (
            MInst::Lea { dst, mem },
            MInst::Mov { dst: ldst, src: Src::Mem(m2, msz), size: _, sext: false },
        ) if m2.base == Some(*dst) && m2.index.is_none() => {
            stats.fused_lea_load += 1;
            Some(Op::LeaLoad {
                adst: dst.0,
                amem: PackedMem::of(mem),
                ldst: ldst.0,
                ldisp: m2.disp,
                size: *msz,
            })
        }
        // mov g, @G; mov d, mem — a global array base materialised right
        // before the access that indexes through it. The fused op writes
        // the base register first (sub-step 1), so the load's effective
        // address sees exactly the value the standalone pair would.
        (
            MInst::Mov { dst, src: Src::Global(g), size: gsz, sext: gsx },
            MInst::Mov { dst: ldst, src: Src::Mem(m, msz), size: _, sext: false },
        ) if no_sext(*gsx, *gsz) && m.base == Some(*dst) => {
            stats.fused_glo_load += 1;
            Some(Op::GloLoad {
                gdst: dst.0,
                gid: g.0,
                ldst: ldst.0,
                mem: PackedMem::of(m),
                size: *msz,
            })
        }
        // mov g, @G; fadd/fmul d, l, 8(mem) — the same base reload feeding
        // a folded f64 memory operand (dot-product inner loops).
        (
            MInst::Mov { dst, src: Src::Global(g), size: gsz, sext: gsx },
            MInst::Bin { op: op @ (BinOp::FAdd | BinOp::FMul), dst: fdst, lhs, rhs: Src::Mem(m, 8), ty: Ty::F64 },
        ) if no_sext(*gsx, *gsz) && m.base == Some(*dst) => {
            stats.fused_glo_load += 1;
            Some(Op::GloFBin {
                gdst: dst.0,
                gid: g.0,
                mul: matches!(op, BinOp::FMul),
                fdst: fdst.0,
                lhs: lhs.0,
                mem: PackedMem::of(m),
            })
        }
        // mov a, b; mov c, d — loop-bottom variable rotation. Sub-step 1
        // writes `a` before sub-step 2 reads `d`, so `d == a` chains.
        (
            MInst::Mov { dst: d1, src: Src::Reg(s1), size: z1, sext: x1 },
            MInst::Mov { dst: d2, src: Src::Reg(s2), size: z2, sext: x2 },
        ) if no_sext(*x1, *z1) && no_sext(*x2, *z2) => {
            stats.fused_mov_mov += 1;
            Some(Op::MovRR { d1: d1.0, s1: s1.0, d2: d2.0, s2: s2.0 })
        }
        _ => None,
    }
}

fn translate_function(mf: &MachineFunction, stats: &mut TranslateStats) -> TranslatedFunc {
    let n = mf.instrs.len();
    if n == 0 {
        return TranslatedFunc::default();
    }
    // Leaders: the entry, every branch target, and every fall-through past a
    // segment ender. Fusion must not swallow a branch target (the pair would
    // not be enterable at its second instruction).
    let mut leader = vec![false; n];
    leader[0] = true;
    for (i, inst) in mf.instrs.iter().enumerate() {
        match inst {
            MInst::Jmp { target } => {
                if let Some(l) = leader.get_mut(*target as usize) {
                    *l = true;
                }
            }
            MInst::Jnz { then_t, else_t, .. } => {
                for t in [*then_t, *else_t] {
                    if let Some(l) = leader.get_mut(t as usize) {
                        *l = true;
                    }
                }
            }
            MInst::Call { .. } | MInst::CallIntr { .. } | MInst::Ret { .. } => {
                if let Some(l) = leader.get_mut(i + 1) {
                    *l = true;
                }
            }
            _ => {}
        }
    }
    stats.blocks += leader.iter().filter(|&&l| l).count() as u64;
    stats.ops += n as u64;

    // Decode every instruction standalone, then overlay fused pairs. The
    // standalone op at `i + 1` is kept: it is the entry point for trap
    // resumes at that PC.
    let mut ops: Vec<Op> = mf.instrs.iter().map(decode).collect();
    for i in 0..n - 1 {
        if leader[i + 1] {
            continue;
        }
        if let Some(fused) = fuse(&mf.instrs[i], &mf.instrs[i + 1], stats) {
            ops[i] = fused;
        }
    }

    // Steps-to-block-end, computed backwards over the fused stream. A
    // non-ender whose successor would fall off the function end charges only
    // itself; the engine's next segment entry then reports the wild PC
    // (without consuming fuel), exactly like the interpreter's fetch check.
    let mut ste = vec![0u32; n];
    for i in (0..n).rev() {
        let c = ops[i].cost();
        ste[i] = if ops[i].ends_segment() {
            c
        } else {
            let next = i + c as usize;
            if next >= n {
                c
            } else {
                c + ste[next]
            }
        };
    }
    TranslatedFunc { ops, ste }
}

/// Translate a whole module (declarations translate to empty functions —
/// entering one traps as a wild PC, exactly like the interpreter's fetch).
pub(crate) fn translate_module(mm: &MachineModule) -> TranslatedModule {
    let mut stats = TranslateStats::default();
    let funcs = mm
        .funcs
        .iter()
        .map(|mf| {
            if mf.is_decl {
                TranslatedFunc::default()
            } else {
                translate_function(mf, &mut stats)
            }
        })
        .collect();
    TranslatedModule { funcs, stats }
}

/// Content hash of a module's executable substance: function names,
/// declaration flags, frame sizes and the full instruction stream. Two
/// modules compiled from the same IR at the same opt level (and armor
/// setting) hash equal; any codegen difference — different opt level,
/// different instruction selection — changes the key.
fn content_key(mm: &MachineModule) -> u64 {
    let mut h = DefaultHasher::new();
    mm.funcs.len().hash(&mut h);
    let mut buf = String::new();
    for f in &mm.funcs {
        f.name.hash(&mut h);
        f.is_decl.hash(&mut h);
        f.frame_size.hash(&mut h);
        f.instrs.len().hash(&mut h);
        buf.clear();
        let _ = write!(buf, "{:?}", f.instrs);
        buf.hash(&mut h);
    }
    h.finish()
}

/// Process-wide, content-keyed store of shared translations.
///
/// Keyed by [`content_key`], so the cache is per-`(module, opt_level)` by
/// construction: identical machine code shares one `Arc`'d translation
/// across every process, fork and campaign; recompiling at a different opt
/// level produces different machine code and therefore a fresh entry.
#[derive(Default)]
pub struct TranslationCache {
    map: Mutex<HashMap<u64, Arc<TranslatedModule>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TranslationCache {
    /// The process-global cache (what [`CompiledEngine::for_image`]
    /// consults).
    ///
    /// [`CompiledEngine::for_image`]: crate::engine::CompiledEngine::for_image
    pub fn global() -> &'static TranslationCache {
        static GLOBAL: OnceLock<TranslationCache> = OnceLock::new();
        GLOBAL.get_or_init(TranslationCache::default)
    }

    /// Look up (or translate and insert) the module's shared translation.
    pub fn get_or_translate(&self, mm: &MachineModule) -> Arc<TranslatedModule> {
        let key = content_key(mm);
        if let Some(t) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(t);
        }
        // Translate outside the lock; a racing translation of the same
        // module resolves to whichever entry landed first.
        let t = Arc::new(translate_module(mm));
        self.misses.fetch_add(1, Ordering::Relaxed);
        Arc::clone(self.map.lock().unwrap().entry(key).or_insert(t))
    }

    /// Cache hits so far (lookups that reused a translation).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (fresh translations).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct translations currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when no translation has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
