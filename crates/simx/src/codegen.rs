//! SimISA backend: instruction selection, frame layout and linear-scan
//! register allocation.
//!
//! Two lowering disciplines reproduce the paper's `-O0` / `-O1` machine-code
//! shapes:
//!
//! * **stack-slot mode** (`-O0`): every IR value round-trips through a frame
//!   slot, address operands are plain `(reg)` dereferences of pointers
//!   reloaded from slots — so every value is always retrievable from memory
//!   at recovery time;
//! * **register mode** (`-O1`): values live in registers via linear scan,
//!   `gep`s fold into `disp(base,index,scale)` operands (giving Safeguard an
//!   index register to patch), single-use loads fold CISC-style into their
//!   consuming ALU instruction, and the load's debug location is attached to
//!   the folded instruction exactly as Armor requires (paper §3.3).
//!
//! The backend also emits the simulated DWARF: a line table entry per
//! instruction and a [`VarDie`] per Armor [`DieRequest`], with location
//! ranges derived from the allocation intervals (so a parameter whose
//! register has been reused reports *no location*, making Safeguard decline
//! rather than fetch garbage).

use crate::debug::{DebugData, DieRequest, LocEntry, VarDie, VarPlace};
use crate::image::{MachineFunction, MachineModule};
use crate::isa::{MInst, MemOp, Reg, Src, FP, INST_BYTES};
use analysis::{Cfg, Liveness, UseDef};
use std::collections::{HashMap, HashSet};
use tinyir::interp::const_bits;
use tinyir::{
    BlockId, Callee, DebugLoc, Function, FuncId, Instr, InstrId, InstrKind, Module, Ty, Value,
};

/// Integer scratch registers (never allocated).
const S0: Reg = Reg(0);
const S1: Reg = Reg(1);
const S2: Reg = Reg(2);
/// Float scratch registers (never allocated).
const X0: Reg = Reg(16);
const X1: Reg = Reg(17);
const X2: Reg = Reg(18);
/// Allocatable integer registers.
const GPR_POOL: [Reg; 11] = [
    Reg(3),
    Reg(4),
    Reg(5),
    Reg(6),
    Reg(7),
    Reg(8),
    Reg(9),
    Reg(10),
    Reg(11),
    Reg(12),
    Reg(13),
];
/// Allocatable float registers.
const FPR_POOL: [Reg; 13] = [
    Reg(19),
    Reg(20),
    Reg(21),
    Reg(22),
    Reg(23),
    Reg(24),
    Reg(25),
    Reg(26),
    Reg(27),
    Reg(28),
    Reg(29),
    Reg(30),
    Reg(31),
];

/// Where an IR value lives at run time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Loc {
    /// In a register for its whole live interval.
    R(Reg),
    /// In the frame slot at `FP + offset`.
    Slot(i64),
}

/// Source of a parallel phi copy.
#[derive(Clone, Copy, PartialEq, Debug)]
enum CopySrc {
    Loc(Loc),
    Imm(u64),
    Global(tinyir::GlobalId),
}

/// Compile an entire TinyIR module to SimISA.
///
/// `regalloc = false` is the `-O0` discipline, `true` the `-O1` one.
/// `die_requests` come from Armor and drive [`VarDie`] emission.
pub fn compile_module(
    ir: &Module,
    regalloc: bool,
    die_requests: &[DieRequest],
) -> MachineModule {
    let mut funcs = Vec::with_capacity(ir.funcs.len());
    let mut per_func_dies: Vec<Vec<(String, VarPlace, u32, u32)>> = Vec::new();
    for (fi, f) in ir.funcs.iter().enumerate() {
        if f.is_decl {
            funcs.push(MachineFunction {
                name: f.name.clone(),
                instrs: vec![],
                locs: vec![],
                frame_size: 0,
                code_offset: 0,
                is_decl: true,
            });
            per_func_dies.push(vec![]);
            continue;
        }
        let reqs: Vec<&DieRequest> = die_requests
            .iter()
            .filter(|r| r.func == FuncId(fi as u32))
            .collect();
        let (mf, dies) = lower_function(ir, f, regalloc, &reqs);
        funcs.push(mf);
        per_func_dies.push(dies);
    }
    // Assign module-relative code offsets (64-byte inter-function padding).
    let mut off = 0u64;
    for f in &mut funcs {
        if f.is_decl {
            continue;
        }
        f.code_offset = off;
        off += f.instrs.len() as u64 * INST_BYTES + 64;
    }
    // Build debug data with final offsets.
    let mut debug = DebugData::default();
    for f in &funcs {
        for (i, loc) in f.locs.iter().enumerate() {
            if let Some(l) = loc {
                debug.push_line(f.offset_of(i), *l);
            }
        }
    }
    for (f, dies) in funcs.iter().zip(&per_func_dies) {
        for (name, place, lo_idx, hi_idx) in dies {
            let lo = f.offset_of(*lo_idx as usize);
            let hi = f.offset_of(*hi_idx as usize);
            debug
                .vars
                .entry(name.clone())
                .or_insert_with(|| VarDie { name: name.clone(), locs: vec![] })
                .locs
                .push(LocEntry { lo, hi, place: place_of(*place) });
        }
    }
    MachineModule {
        name: ir.name.clone(),
        funcs,
        debug,
        ir: ir.clone(),
        code_size: off,
    }
}

fn place_of(p: VarPlace) -> VarPlace {
    p
}

/// Split critical edges into blocks that carry phis, so phi copies inserted
/// at predecessor ends cannot leak onto the wrong path.
fn split_critical_edges(f: &mut Function) {
    let nblocks = f.blocks.len();
    let mut pred_count = vec![0usize; nblocks];
    for (_, block) in f.block_iter() {
        if let Some(&last) = block.instrs.last() {
            for s in f.instr(last).successors() {
                pred_count[s.0 as usize] += 1;
            }
        }
    }
    let has_phi: Vec<bool> = (0..nblocks)
        .map(|b| {
            f.blocks[b]
                .instrs
                .first()
                .map(|&i| matches!(f.instr(i).kind, InstrKind::Phi { .. }))
                .unwrap_or(false)
        })
        .collect();
    for p in 0..nblocks {
        let Some(&last) = f.blocks[p].instrs.last() else { continue };
        let succs = f.instr(last).successors();
        if succs.len() < 2 {
            continue;
        }
        for s in succs {
            if !has_phi[s.0 as usize] || pred_count[s.0 as usize] < 2 {
                continue;
            }
            // Split p -> s.
            let e = f.add_block(format!("crit.{}.{}", p, s.0));
            let br = InstrId(f.instrs.len() as u32);
            f.instrs.push(Instr::new(InstrKind::Br { target: s }));
            f.blocks[e.0 as usize].instrs.push(br);
            let pb = BlockId(p as u32);
            // Retarget p's terminator edge(s) to e.
            if let InstrKind::CondBr { then_bb, else_bb, .. } =
                &mut f.instrs[last.0 as usize].kind
            {
                if *then_bb == s {
                    *then_bb = e;
                }
                if *else_bb == s {
                    *else_bb = e;
                }
            }
            // Update phi incomings in s: p -> e.
            let s_instrs = f.blocks[s.0 as usize].instrs.clone();
            for iid in s_instrs {
                if let InstrKind::Phi { incomings, .. } = &mut f.instrs[iid.0 as usize].kind {
                    for (b, _) in incomings.iter_mut() {
                        if *b == pb {
                            *b = e;
                        }
                    }
                }
            }
        }
    }
}

struct FnCtx<'a> {
    module: &'a Module,
    f: Function,
    #[allow(dead_code)] // recorded for debugging dumps
    regalloc: bool,
    storage: HashMap<InstrId, Loc>,
    arg_loc: Vec<Loc>,
    folded_load: HashMap<InstrId, InstrId>, // load -> consuming bin
    folded_gep: HashSet<InstrId>,
    alloca_area: HashMap<InstrId, i64>,
    #[allow(dead_code)] // recorded for debugging dumps
    frame_size: u64,
    out: Vec<MInst>,
    olocs: Vec<Option<DebugLoc>>,
    cur_loc: Option<DebugLoc>,
    block_mstart: Vec<u32>,
    pos2mpos: Vec<u32>,
    intervals: HashMap<InstrId, (u32, u32)>, // liveness-key -> [lo,hi] IR positions
    lv: Liveness,
}

fn lower_function(
    module: &Module,
    orig: &Function,
    regalloc: bool,
    reqs: &[&DieRequest],
) -> (MachineFunction, Vec<(String, VarPlace, u32, u32)>) {
    let mut f = orig.clone();
    split_critical_edges(&mut f);
    let cfg = Cfg::new(&f);
    let lv = Liveness::compute(&f, &cfg);
    let ud = UseDef::compute(&f);

    // -- linear position of every instruction --------------------------------
    let mut pos_of: HashMap<InstrId, u32> = HashMap::new();
    let mut order: Vec<InstrId> = Vec::new();
    for (_, block) in f.block_iter() {
        for &iid in &block.instrs {
            pos_of.insert(iid, order.len() as u32);
            order.push(iid);
        }
    }
    let npos = order.len() as u32;

    // -- folding decisions (register mode only) ------------------------------
    let mut folded_load: HashMap<InstrId, InstrId> = HashMap::new();
    let mut folded_gep: HashSet<InstrId> = HashSet::new();
    // Extra use positions injected into intervals by folding / phi copies.
    let mut extra_use: HashMap<InstrId, Vec<u32>> = HashMap::new();
    if regalloc {
        let owner = f.instr_blocks();
        // CISC load folding: single user, same block, bin rhs, no
        // store/call in between.
        for (_, block) in f.block_iter() {
            for &iid in &block.instrs {
                let InstrKind::Load { ptr, ty } = f.instr(iid).kind else { continue };
                let Some(user) = ud.single_user(iid) else { continue };
                if owner[user.0 as usize] != owner[iid.0 as usize] {
                    continue;
                }
                let InstrKind::Bin { op, lhs, rhs, ty: bty } = f.instr(user).kind else {
                    continue;
                };
                let _ = op;
                if rhs != Value::Instr(iid) || lhs == Value::Instr(iid) || bty != ty {
                    continue;
                }
                // Scan between load and user for memory hazards.
                let (lp, up) = (pos_of[&iid], pos_of[&user]);
                let hazard = ((lp + 1)..up).any(|p| {
                    matches!(
                        f.instr(order[p as usize]).kind,
                        InstrKind::Store { .. } | InstrKind::Call { .. }
                    )
                });
                if hazard {
                    continue;
                }
                folded_load.insert(iid, user);
                // The load's address inputs are now consumed at `user`.
                if let Value::Instr(g) = ptr {
                    extra_use.entry(g).or_default().push(up);
                }
            }
        }
        // Gep folding into memory operands: power-of-two scale, every user a
        // same-block load/store dereferencing it.
        for (_, block) in f.block_iter() {
            for &iid in &block.instrs {
                let InstrKind::Gep { base, index, elem_size } = f.instr(iid).kind else {
                    continue;
                };
                if !matches!(elem_size, 1 | 2 | 4 | 8) {
                    continue;
                }
                let users = &ud.users[iid.0 as usize];
                if users.is_empty() {
                    continue;
                }
                let ok = users.iter().all(|&u| {
                    owner[u.0 as usize] == owner[iid.0 as usize]
                        && match &f.instr(u).kind {
                            InstrKind::Load { ptr, .. } => *ptr == Value::Instr(iid),
                            InstrKind::Store { ptr, val } => {
                                *ptr == Value::Instr(iid) && *val != Value::Instr(iid)
                            }
                            _ => false,
                        }
                });
                if !ok {
                    continue;
                }
                folded_gep.insert(iid);
                // base/index are now consumed at each materialisation site
                // (the user itself, or the bin a folded load melts into).
                for &u in users {
                    let site = folded_load.get(&u).copied().unwrap_or(u);
                    let sp = pos_of[&site];
                    for v in [base, index] {
                        if let Some(k) = lv.key_of(v) {
                            extra_use.entry(k).or_default().push(sp);
                        }
                    }
                }
            }
        }
    }

    // -- intervals ------------------------------------------------------------
    // For every liveness key: [min(def, live positions), max(live positions)].
    let mut intervals: HashMap<InstrId, (u32, u32)> = HashMap::new();
    for p in 0..npos {
        let iid = order[p as usize];
        for &k in lv.live_before_set(iid) {
            let e = intervals.entry(k).or_insert((p, p));
            e.0 = e.0.min(p);
            e.1 = e.1.max(p);
        }
        if f.instr(iid).result_ty().is_some() {
            let e = intervals.entry(iid).or_insert((p, p));
            e.0 = e.0.min(p);
            e.1 = e.1.max(p);
        }
    }
    // Arguments are defined at position 0.
    for a in 0..f.params.len() as u32 {
        let k = lv.arg_key(a);
        if let Some(e) = intervals.get_mut(&k) {
            e.0 = 0;
        }
    }
    // Arguments that Armor wants described must stay addressable for the
    // whole function (the ABI's incoming-argument guarantee the paper's
    // terminal-value case (3) relies on): pin their interval to the full
    // range so the register is never reused — or the value is parked in a
    // slot — and the DIE covers every protected access.
    for r in reqs {
        if let Value::Arg(a) = r.value {
            let k = lv.arg_key(a);
            let e = intervals.entry(k).or_insert((0, npos.saturating_sub(1)));
            e.0 = 0;
            e.1 = npos.saturating_sub(1);
        }
    }
    // Phi storages are written at predecessor terminators; extend.
    for (bid, block) in f.block_iter() {
        for &iid in &block.instrs {
            if let InstrKind::Phi { incomings, .. } = &f.instr(iid).kind {
                for (pred, _) in incomings {
                    let Some(&last) = f.block(*pred).instrs.last() else { continue };
                    let p = pos_of[&last];
                    let e = intervals.entry(iid).or_insert((p, p));
                    e.0 = e.0.min(p);
                    e.1 = e.1.max(p);
                }
                let _ = bid;
            }
        }
    }
    for (k, uses) in &extra_use {
        if let Some(e) = intervals.get_mut(k) {
            for &p in uses {
                e.0 = e.0.min(p);
                e.1 = e.1.max(p);
            }
        }
    }

    // -- storage assignment ----------------------------------------------------
    let mut storage: HashMap<InstrId, Loc> = HashMap::new();
    let mut arg_loc: Vec<Loc> = Vec::new();
    let mut frame: i64 = 0;
    let mut alloca_area: HashMap<InstrId, i64> = HashMap::new();

    // Reserve array space for allocas in all modes.
    for (_, block) in f.block_iter() {
        for &iid in &block.instrs {
            if let InstrKind::Alloca { elem_ty, count } = f.instr(iid).kind {
                let align = elem_ty.align() as i64;
                frame = (frame + align - 1) & !(align - 1);
                alloca_area.insert(iid, frame);
                frame += (elem_ty.size() as i64 * count as i64).max(8);
            }
        }
    }

    if !regalloc {
        // Stack-slot mode: every value and argument gets a slot.
        for a in 0..f.params.len() {
            arg_loc.push(Loc::Slot(frame));
            frame += 8;
            let _ = a;
        }
        for (_, block) in f.block_iter() {
            for &iid in &block.instrs {
                if f.instr(iid).result_ty().is_some() {
                    storage.insert(iid, Loc::Slot(frame));
                    frame += 8;
                }
            }
        }
    } else {
        // Linear scan over intervals.
        #[derive(Clone, Copy)]
        struct Cand {
            key: InstrId,
            lo: u32,
            hi: u32,
            float: bool,
        }
        let n_real = f.instrs.len() as u32;
        let mut cands: Vec<Cand> = Vec::new();
        for (&k, &(lo, hi)) in &intervals {
            let (is_val, float) = if k.0 < n_real {
                let instr = f.instr(k);
                // Folded values get no storage at all.
                if folded_gep.contains(&k) || folded_load.contains_key(&k) {
                    continue;
                }
                match instr.result_ty() {
                    Some(t) => (true, t.is_float()),
                    None => continue,
                }
            } else {
                let a = (k.0 - n_real) as usize;
                (true, f.params[a].is_float())
            };
            if is_val {
                cands.push(Cand { key: k, lo, hi, float });
            }
        }
        cands.sort_by_key(|c| (c.lo, c.hi, c.key.0));
        let mut active: Vec<(u32, Reg)> = Vec::new(); // (hi, reg)
        let mut free_gpr: Vec<Reg> = GPR_POOL.to_vec();
        let mut free_fpr: Vec<Reg> = FPR_POOL.to_vec();
        let mut assigned: HashMap<InstrId, Loc> = HashMap::new();
        for c in cands {
            active.retain(|&(hi, r)| {
                if hi < c.lo {
                    if r.is_float() {
                        free_fpr.push(r);
                    } else {
                        free_gpr.push(r);
                    }
                    false
                } else {
                    true
                }
            });
            let pool = if c.float { &mut free_fpr } else { &mut free_gpr };
            match pool.pop() {
                Some(r) => {
                    active.push((c.hi, r));
                    assigned.insert(c.key, Loc::R(r));
                }
                None => {
                    assigned.insert(c.key, Loc::Slot(frame));
                    frame += 8;
                }
            }
        }
        for a in 0..f.params.len() as u32 {
            let k = lv.arg_key(a);
            arg_loc.push(assigned.get(&k).copied().unwrap_or({
                // Dead argument: park it in a slot so GetArg still works.
                let s = Loc::Slot(frame);
                frame += 8;
                s
            }));
        }
        for (k, l) in assigned {
            if k.0 < n_real {
                storage.insert(k, l);
            }
        }
    }

    let frame_size = ((frame + 15) & !15) as u64;

    let mut ctx = FnCtx {
        module,
        f,
        regalloc,
        storage,
        arg_loc,
        folded_load,
        folded_gep,
        alloca_area: alloca_area.clone(),
        frame_size,
        out: Vec::new(),
        olocs: Vec::new(),
        cur_loc: None,
        block_mstart: Vec::new(),
        pos2mpos: vec![0; npos as usize],
        intervals,
        lv,
    };
    ctx.lower(&pos_of, &alloca_area);

    // -- DIE emission -----------------------------------------------------------
    let func_end = ctx.out.len() as u32;
    let mut dies: Vec<(String, VarPlace, u32, u32)> = Vec::new();
    for r in reqs {
        let (loc, key) = match r.value {
            Value::Instr(id) => (ctx.storage.get(&id).copied(), Some(id)),
            Value::Arg(a) => (
                ctx.arg_loc.get(a as usize).copied(),
                Some(ctx.lv.arg_key(a)),
            ),
            _ => (None, None),
        };
        let Some(loc) = loc else { continue }; // optimised away: no DIE
        let place = match loc {
            Loc::R(reg) => VarPlace::Reg(reg),
            Loc::Slot(off) => VarPlace::FrameOffset(off),
        };
        let (lo, hi) = match (loc, key.and_then(|k| ctx.intervals.get(&k))) {
            // Register locations are only valid over the allocation
            // interval; slots are valid for the whole function. The upper
            // bound must cover the *entire* lowering of the interval's last
            // IR instruction (a memory access may emit operand-setup moves
            // before the faulting dereference), so it extends to the start
            // of the next IR instruction's lowering.
            (Loc::R(_), Some(&(lo, hi))) => {
                let hi_mpos = ctx
                    .pos2mpos
                    .get(hi as usize + 1)
                    .copied()
                    .unwrap_or(func_end)
                    .max(ctx.pos2mpos[hi as usize] + 1)
                    .min(func_end);
                (ctx.pos2mpos[lo as usize], hi_mpos)
            }
            _ => (0, func_end),
        };
        dies.push((r.name.clone(), place, lo, hi.max(lo + 1)));
    }

    let name = ctx.f.name.clone();
    let mf = MachineFunction {
        name,
        instrs: ctx.out,
        locs: ctx.olocs,
        frame_size,
        code_offset: 0,
        is_decl: false,
    };
    (mf, dies)
}

impl<'a> FnCtx<'a> {
    fn emit(&mut self, m: MInst) -> u32 {
        self.out.push(m);
        self.olocs.push(self.cur_loc);
        self.out.len() as u32 - 1
    }

    fn bank_scratch(&self, ty: Ty, which: u8) -> Reg {
        match (ty.is_float(), which) {
            (false, 0) => S0,
            (false, 1) => S1,
            (false, _) => S2,
            (true, 0) => X0,
            (true, 1) => X1,
            (true, _) => X2,
        }
    }

    fn value_ty(&self, v: Value) -> Ty {
        tinyir::module::value_ty(&self.f, v).unwrap_or(Ty::I64)
    }

    fn loc_of(&self, v: Value) -> Option<Loc> {
        match v {
            Value::Instr(id) => self.storage.get(&id).copied(),
            Value::Arg(a) => self.arg_loc.get(a as usize).copied(),
            _ => None,
        }
    }

    /// Ensure `v` is in a register, loading/materialising into `scratch`
    /// when necessary.
    fn ensure_reg(&mut self, v: Value, scratch: Reg) -> Reg {
        if let Some(bits) = const_bits(v) {
            self.emit(MInst::Mov { dst: scratch, src: Src::Imm(bits), size: 8, sext: false });
            return scratch;
        }
        if let Value::Global(g) = v {
            self.emit(MInst::Mov { dst: scratch, src: Src::Global(g), size: 8, sext: false });
            return scratch;
        }
        match self.loc_of(v).unwrap_or_else(|| panic!("value {v:?} has no storage in @{}", self.f.name)) {
            Loc::R(r) => r,
            Loc::Slot(off) => {
                self.emit(MInst::Mov {
                    dst: scratch,
                    src: Src::Mem(MemOp::base_disp(FP, off), 8),
                    size: 8,
                    sext: false,
                });
                scratch
            }
        }
    }

    /// A `Src` for `v` without forcing a register when avoidable.
    fn src_of(&mut self, v: Value, _scratch: Reg) -> Src {
        if let Some(bits) = const_bits(v) {
            return Src::Imm(bits);
        }
        if let Value::Global(g) = v {
            return Src::Global(g);
        }
        match self.loc_of(v).unwrap_or_else(|| panic!("value {v:?} has no storage in @{}", self.f.name)) {
            Loc::R(r) => Src::Reg(r),
            Loc::Slot(off) => Src::Mem(MemOp::base_disp(FP, off), 8),
        }
    }

    /// Destination register for value `id` plus an optional spill slot.
    fn dst_for(&self, id: InstrId, scratch: Reg) -> (Reg, Option<i64>) {
        match self.storage.get(&id) {
            Some(Loc::R(r)) => (*r, None),
            Some(Loc::Slot(off)) => (scratch, Some(*off)),
            None => (scratch, None), // result unused
        }
    }

    fn finish(&mut self, dst: Reg, spill: Option<i64>) {
        if let Some(off) = spill {
            self.emit(MInst::Store { src: dst, mem: MemOp::base_disp(FP, off), size: 8 });
        }
    }

    /// Build the memory operand for a pointer value at an access site.
    fn mem_for_ptr(&mut self, ptr: Value, s_base: Reg, s_index: Reg) -> MemOp {
        if let Value::Instr(g) = ptr {
            // Direct dereference of a stack slot: address it FP-relative,
            // exactly like clang's `-16(%rbp)` operands for locals. (These
            // accesses involve no address computation, so Armor rightly
            // skips them — and with FP-relative addressing there is no
            // intermediate pointer register for a fault to corrupt.)
            if let InstrKind::Alloca { .. } = self.f.instr(g).kind {
                if let Some(&off) = self.alloca_area.get(&g) {
                    return MemOp::base_disp(FP, off);
                }
            }
            if self.folded_gep.contains(&g) {
                let InstrKind::Gep { base, index, elem_size } = self.f.instr(g).kind else {
                    unreachable!()
                };
                let base_r = self.ensure_reg(base, s_base);
                return match const_bits(index) {
                    Some(c) => MemOp::base_disp(
                        base_r,
                        (c as i64).wrapping_mul(elem_size as i64),
                    ),
                    None => {
                        let idx_r = self.ensure_reg(index, s_index);
                        MemOp::base_index(base_r, idx_r, elem_size as u8, 0)
                    }
                };
            }
        }
        let r = self.ensure_reg(ptr, s_base);
        MemOp::base_disp(r, 0)
    }

    fn lower(&mut self, pos_of: &HashMap<InstrId, u32>, alloca_area: &HashMap<InstrId, i64>) {
        // Prologue: fetch arguments into their storage.
        self.cur_loc = None;
        for a in 0..self.f.params.len() {
            match self.arg_loc[a] {
                Loc::R(r) => {
                    self.emit(MInst::GetArg { dst: r, idx: a as u8 });
                }
                Loc::Slot(off) => {
                    self.emit(MInst::GetArg { dst: S0, idx: a as u8 });
                    self.emit(MInst::Store {
                        src: S0,
                        mem: MemOp::base_disp(FP, off),
                        size: 8,
                    });
                }
            }
        }

        let nblocks = self.f.blocks.len();
        self.block_mstart = vec![0; nblocks];
        for b in 0..nblocks {
            self.block_mstart[b] = self.out.len() as u32;
            let instrs = self.f.blocks[b].instrs.clone();
            for &iid in &instrs {
                self.pos2mpos[pos_of[&iid] as usize] = self.out.len() as u32;
                self.cur_loc = self.f.instr(iid).loc;
                self.lower_instr(iid, alloca_area, BlockId(b as u32));
            }
        }
        // Fix up branch targets from block ids to machine indices.
        for m in &mut self.out {
            match m {
                MInst::Jmp { target } => *target = self.block_mstart[*target as usize],
                MInst::Jnz { then_t, else_t, .. } => {
                    *then_t = self.block_mstart[*then_t as usize];
                    *else_t = self.block_mstart[*else_t as usize];
                }
                _ => {}
            }
        }
    }

    fn lower_instr(&mut self, iid: InstrId, alloca_area: &HashMap<InstrId, i64>, cur_bb: BlockId) {
        if self.folded_load.contains_key(&iid) || self.folded_gep.contains(&iid) {
            return; // materialised at their consumer
        }
        let kind = self.f.instr(iid).kind.clone();
        match kind {
            InstrKind::Phi { .. } => {} // written by predecessor copies
            InstrKind::Alloca { .. } => {
                let off = alloca_area[&iid];
                let (dst, spill) = self.dst_for(iid, S0);
                self.emit(MInst::Lea { dst, mem: MemOp::base_disp(FP, off) });
                self.finish(dst, spill);
            }
            InstrKind::Load { ptr, ty } => {
                let mem = self.mem_for_ptr(ptr, S1, S2);
                let (dst, spill) = self.dst_for(iid, self.bank_scratch(ty, 0));
                self.emit(MInst::Mov {
                    dst,
                    src: Src::Mem(mem, ty.size() as u8),
                    size: ty.size() as u8,
                    sext: false,
                });
                self.finish(dst, spill);
            }
            InstrKind::Store { val, ptr } => {
                let ty = self.value_ty(val);
                let sreg = self.ensure_reg(val, self.bank_scratch(ty, 0));
                let mem = self.mem_for_ptr(ptr, S1, S2);
                self.emit(MInst::Store { src: sreg, mem, size: ty.size() as u8 });
            }
            InstrKind::Gep { base, index, elem_size } => {
                let base_r = self.ensure_reg(base, S0);
                let (dst, spill) = self.dst_for(iid, S0);
                match const_bits(index) {
                    Some(c) => {
                        self.emit(MInst::Lea {
                            dst,
                            mem: MemOp::base_disp(
                                base_r,
                                (c as i64).wrapping_mul(elem_size as i64),
                            ),
                        });
                    }
                    None => {
                        let idx_ty = self.value_ty(index);
                        let mut idx_r = self.ensure_reg(index, S1);
                        if matches!(elem_size, 1 | 2 | 4 | 8) {
                            self.emit(MInst::Lea {
                                dst,
                                mem: MemOp::base_index(base_r, idx_r, elem_size as u8, 0),
                            });
                        } else {
                            // Materialise index * elem_size in S1 first.
                            if idx_r != S1 {
                                self.emit(MInst::Mov {
                                    dst: S1,
                                    src: Src::Reg(idx_r),
                                    size: 8,
                                    sext: false,
                                });
                                idx_r = S1;
                            }
                            self.emit(MInst::Bin {
                                op: tinyir::BinOp::Mul,
                                dst: S1,
                                lhs: idx_r,
                                rhs: Src::Imm(elem_size as u64),
                                ty: Ty::I64,
                            });
                            self.emit(MInst::Lea {
                                dst,
                                mem: MemOp::base_index(base_r, S1, 1, 0),
                            });
                        }
                        let _ = idx_ty;
                    }
                }
                self.finish(dst, spill);
            }
            InstrKind::Bin { op, lhs, rhs, ty } => {
                let lreg = self.ensure_reg(lhs, self.bank_scratch(ty, 0));
                // Folded CISC memory rhs?
                let folded = rhs
                    .as_instr()
                    .filter(|l| self.folded_load.get(l) == Some(&iid));
                let (rsrc, mem_loc) = match folded {
                    Some(load_id) => {
                        let InstrKind::Load { ptr, ty: lty } = self.f.instr(load_id).kind
                        else {
                            unreachable!()
                        };
                        let mem = self.mem_for_ptr(ptr, S1, S2);
                        (Src::Mem(mem, lty.size() as u8), self.f.instr(load_id).loc)
                    }
                    None => (self.src_of(rhs, self.bank_scratch(ty, 1)), None),
                };
                // Slot-resident rhs: keep it as a folded frame-slot operand
                // only in register mode; in slot mode load it explicitly for
                // clarity of the emitted code.
                let (dst, spill) = self.dst_for(iid, self.bank_scratch(ty, 0));
                if let Some(l) = mem_loc {
                    // The folded instruction carries the *load's* location.
                    self.cur_loc = Some(l).or(self.cur_loc);
                }
                self.emit(MInst::Bin { op, dst, lhs: lreg, rhs: rsrc, ty });
                self.cur_loc = self.f.instr(iid).loc;
                self.finish(dst, spill);
            }
            InstrKind::Icmp { pred, lhs, rhs } => {
                let ty = self.value_ty(lhs);
                let lreg = self.ensure_reg(lhs, S0);
                let rsrc = self.src_of(rhs, S1);
                let (dst, spill) = self.dst_for(iid, S0);
                self.emit(MInst::Icmp { pred, dst, lhs: lreg, rhs: rsrc, ty });
                self.finish(dst, spill);
            }
            InstrKind::Fcmp { pred, lhs, rhs } => {
                let ty = self.value_ty(lhs);
                let lreg = self.ensure_reg(lhs, X0);
                let rsrc = self.src_of(rhs, X1);
                let (dst, spill) = self.dst_for(iid, S0);
                self.emit(MInst::Fcmp { pred, dst, lhs: lreg, rhs: rsrc, ty });
                self.finish(dst, spill);
            }
            InstrKind::Cast { op, val, to } => {
                let from = self.value_ty(val);
                let sreg = self.ensure_reg(val, self.bank_scratch(from, 0));
                let (dst, spill) = self.dst_for(iid, self.bank_scratch(to, 1));
                self.emit(MInst::Cast { op, dst, src: sreg, from, to });
                self.finish(dst, spill);
            }
            InstrKind::Select { cond, t, f: fv, ty } => {
                let creg = self.ensure_reg(cond, S0);
                let treg = self.ensure_reg(t, self.bank_scratch(ty, 1));
                let freg = self.ensure_reg(fv, self.bank_scratch(ty, 2));
                let (dst, spill) = self.dst_for(iid, self.bank_scratch(ty, 1));
                self.emit(MInst::Select { dst, cond: creg, t: treg, f: freg });
                self.finish(dst, spill);
            }
            InstrKind::Call { callee, args, ret_ty } => {
                let srcs: Vec<Src> = args
                    .iter()
                    .map(|&a| self.src_of(a, S0)) // slots/consts/globals need no scratch
                    .collect();
                let (dst, spill) = match ret_ty {
                    Some(t) => {
                        let (d, s) = self.dst_for(iid, self.bank_scratch(t, 0));
                        (Some(d), s)
                    }
                    None => (None, None),
                };
                match callee {
                    Callee::Func(fid) => {
                        self.emit(MInst::Call { callee: fid, args: srcs, dst });
                    }
                    Callee::Intrinsic(which) => {
                        self.emit(MInst::CallIntr { which, args: srcs, dst });
                    }
                }
                if let Some(d) = dst {
                    self.finish(d, spill);
                }
            }
            InstrKind::Br { target } => {
                self.phi_copies(cur_bb, target);
                self.emit(MInst::Jmp { target: target.0 });
            }
            InstrKind::CondBr { cond, then_bb, else_bb } => {
                let creg = self.ensure_reg(cond, S0);
                self.phi_copies(cur_bb, then_bb);
                self.phi_copies(cur_bb, else_bb);
                self.emit(MInst::Jnz { cond: creg, then_t: then_bb.0, else_t: else_bb.0 });
            }
            InstrKind::Ret { val } => {
                let src = val.map(|v| {
                    let ty = self.value_ty(v);
                    self.ensure_reg(v, self.bank_scratch(ty, 0))
                });
                self.emit(MInst::Ret { src });
            }
        }
        let _ = self.module;
    }

    /// Copy source of `v` for a phi parallel copy.
    fn copy_src(&self, v: Value) -> CopySrc {
        if let Some(bits) = const_bits(v) {
            return CopySrc::Imm(bits);
        }
        if let Value::Global(g) = v {
            return CopySrc::Global(g);
        }
        CopySrc::Loc(self.loc_of(v).expect("phi incoming has storage"))
    }

    /// Emit the parallel copies feeding `succ`'s phis from block `pred`.
    fn phi_copies(&mut self, pred: BlockId, succ: BlockId) {
        let mut copies: Vec<(Loc, CopySrc)> = Vec::new();
        for &iid in &self.f.blocks[succ.0 as usize].instrs.clone() {
            let InstrKind::Phi { incomings, .. } = &self.f.instr(iid).kind else { break };
            let Some((_, v)) = incomings.iter().find(|(b, _)| *b == pred) else {
                continue;
            };
            let Some(dst) = self.storage.get(&iid).copied() else { continue };
            let src = self.copy_src(*v);
            if src != CopySrc::Loc(dst) {
                copies.push((dst, src));
            }
        }
        // Sequentialise with cycle breaking through S2 (raw bits, so one
        // integer scratch serves both banks).
        while !copies.is_empty() {
            let blocked = |dst: Loc, list: &[(Loc, CopySrc)]| {
                list.iter().any(|(_, s)| *s == CopySrc::Loc(dst))
            };
            if let Some(i) = (0..copies.len()).find(|&i| {
                let (dst, _) = copies[i];
                !copies
                    .iter()
                    .enumerate()
                    .any(|(j, (_, s))| j != i && *s == CopySrc::Loc(dst))
            }) {
                let (dst, src) = copies.remove(i);
                self.emit_move(dst, src);
            } else {
                // Cycle: buffer the first destination's current value.
                let (dst0, _) = copies[0];
                self.emit_move(Loc::R(S2), CopySrc::Loc(dst0));
                for (_, s) in copies.iter_mut() {
                    if *s == CopySrc::Loc(dst0) {
                        *s = CopySrc::Loc(Loc::R(S2));
                    }
                }
                let _ = blocked;
            }
        }
    }

    fn emit_move(&mut self, dst: Loc, src: CopySrc) {
        match (dst, src) {
            (Loc::R(d), CopySrc::Loc(Loc::R(s))) => {
                self.emit(MInst::Mov { dst: d, src: Src::Reg(s), size: 8, sext: false });
            }
            (Loc::R(d), CopySrc::Loc(Loc::Slot(off))) => {
                self.emit(MInst::Mov {
                    dst: d,
                    src: Src::Mem(MemOp::base_disp(FP, off), 8),
                    size: 8,
                    sext: false,
                });
            }
            (Loc::R(d), CopySrc::Imm(v)) => {
                self.emit(MInst::Mov { dst: d, src: Src::Imm(v), size: 8, sext: false });
            }
            (Loc::R(d), CopySrc::Global(g)) => {
                self.emit(MInst::Mov { dst: d, src: Src::Global(g), size: 8, sext: false });
            }
            (Loc::Slot(off), s) => {
                let r = match s {
                    CopySrc::Loc(Loc::R(r)) => r,
                    CopySrc::Loc(Loc::Slot(soff)) => {
                        self.emit(MInst::Mov {
                            dst: S0,
                            src: Src::Mem(MemOp::base_disp(FP, soff), 8),
                            size: 8,
                            sext: false,
                        });
                        S0
                    }
                    CopySrc::Imm(v) => {
                        self.emit(MInst::Mov { dst: S0, src: Src::Imm(v), size: 8, sext: false });
                        S0
                    }
                    CopySrc::Global(g) => {
                        self.emit(MInst::Mov {
                            dst: S0,
                            src: Src::Global(g),
                            size: 8,
                            sext: false,
                        });
                        S0
                    }
                };
                self.emit(MInst::Store { src: r, mem: MemOp::base_disp(FP, off), size: 8 });
            }
        }
    }
}
