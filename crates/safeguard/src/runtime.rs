//! Safeguard — CARE's runtime half (paper §3.4, Algorithm 1).
//!
//! Safeguard plays the role of the `LD_PRELOAD`ed shared library that
//! overloads the `SIGSEGV` handler. Here its "signal handler" is
//! [`Safeguard::handle_trap`], invoked by the driver when the SimISA
//! machine traps. The steps are exactly Algorithm 1:
//!
//! 1. get the faulting instruction address from the trap context;
//! 2. `dladdr` the PC to pick the owning module (executable keyed by PC,
//!    shared library keyed by `PC − base`);
//! 3. map the offset through the line table to the `(file,line,col)` key;
//! 4. look the key up in the recovery table (decoded on demand — Safeguard
//!    holds only encoded bytes until a fault actually happens);
//! 5. `dlopen` the recovery library and `dlsym` the kernel;
//! 6. fetch each parameter via its DWARF location list (register or frame
//!    slot) — declining if the location list has no entry covering the PC;
//! 7. execute the kernel (an IR function) against the stopped process's
//!    memory;
//! 8. if the recomputed address equals the faulting address, the kernel's
//!    inputs were themselves contaminated: decline and propagate (this is
//!    the guard that prevents CARE from ever substituting an SDC for a
//!    crash, §5.2);
//! 9. otherwise disassemble the faulting instruction, recompute and patch
//!    its index register (falling back to the base register), and resume.

use crate::cost::{CostModel, RecoveryTime};
use armor::{ArmorOutput, ParamSpec, RecoveryKey, RecoveryTable};
use simx::cpu::effective_addr;
use simx::{MemOp, ModuleId, Process, Trap, TrapKind, VarPlace, FP};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use tinyir::mem::Memory;
use tinyir::Module;

/// Why Safeguard declined to repair a trap. Each reason maps to a concrete
/// failure mode discussed in the paper.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DeclineReason {
    /// Not a segmentation violation (Safeguard only handles `SIGSEGV`).
    NotASegv,
    /// The faulting PC is outside any module (wild jump).
    UnknownPc,
    /// The faulting module carries no recovery table (unprotected library).
    UnprotectedModule,
    /// The line table has no row for the faulting PC.
    NoLineInfo,
    /// No recovery kernel registered under the key (payload: the source
    /// location, for diagnostics).
    NoKernelForKey(String),
    /// The recovery table failed to decode (corrupted artefact).
    BadTable(String),
    /// The table names a kernel the recovery library does not contain
    /// (payload: the kernel symbol) — a `dlsym` miss in the real runtime.
    KernelMissing(String),
    /// A parameter's location list has no entry covering the faulting PC —
    /// the value was optimised away or its register was reused.
    ParamUnavailable(String),
    /// Reading a parameter's frame slot faulted.
    ParamFetchFault,
    /// The kernel itself faulted while re-executing (contaminated input
    /// fed a wild load inside the kernel).
    KernelFault,
    /// The kernel recomputed exactly the faulting address: its inputs are
    /// contaminated; repairing would be wrong (paper footnote 2).
    SameAddress,
    /// The faulting instruction has no memory operand to patch.
    NoMemOperand,
    /// The recomputed address is incompatible with the operand shape
    /// (e.g. not reachable by patching index or base).
    UnpatchableOperand,
}

impl DeclineReason {
    /// The payload-free kind of this reason (histogram key).
    pub fn kind(&self) -> DeclineKind {
        match self {
            DeclineReason::NotASegv => DeclineKind::NotASegv,
            DeclineReason::UnknownPc => DeclineKind::UnknownPc,
            DeclineReason::UnprotectedModule => DeclineKind::UnprotectedModule,
            DeclineReason::NoLineInfo => DeclineKind::NoLineInfo,
            DeclineReason::NoKernelForKey(_) => DeclineKind::NoKernelForKey,
            DeclineReason::BadTable(_) => DeclineKind::BadTable,
            DeclineReason::KernelMissing(_) => DeclineKind::KernelMissing,
            DeclineReason::ParamUnavailable(_) => DeclineKind::ParamUnavailable,
            DeclineReason::ParamFetchFault => DeclineKind::ParamFetchFault,
            DeclineReason::KernelFault => DeclineKind::KernelFault,
            DeclineReason::SameAddress => DeclineKind::SameAddress,
            DeclineReason::NoMemOperand => DeclineKind::NoMemOperand,
            DeclineReason::UnpatchableOperand => DeclineKind::UnpatchableOperand,
        }
    }
}

/// Payload-free decline classification: what the statistics count. Cheap to
/// copy and hash, unlike the diagnostic `DeclineReason` payloads that used
/// to be rendered into strings on every decline.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DeclineKind {
    /// See [`DeclineReason::NotASegv`].
    NotASegv,
    /// See [`DeclineReason::UnknownPc`].
    UnknownPc,
    /// See [`DeclineReason::UnprotectedModule`].
    UnprotectedModule,
    /// See [`DeclineReason::NoLineInfo`].
    NoLineInfo,
    /// See [`DeclineReason::NoKernelForKey`].
    NoKernelForKey,
    /// See [`DeclineReason::BadTable`].
    BadTable,
    /// See [`DeclineReason::KernelMissing`].
    KernelMissing,
    /// See [`DeclineReason::ParamUnavailable`].
    ParamUnavailable,
    /// See [`DeclineReason::ParamFetchFault`].
    ParamFetchFault,
    /// See [`DeclineReason::KernelFault`].
    KernelFault,
    /// See [`DeclineReason::SameAddress`].
    SameAddress,
    /// See [`DeclineReason::NoMemOperand`].
    NoMemOperand,
    /// See [`DeclineReason::UnpatchableOperand`].
    UnpatchableOperand,
    /// Campaign-level: the protected run exhausted its instruction budget
    /// (no single trap declined; the run as a whole did not survive).
    Hang,
}

impl DeclineKind {
    /// All kinds, in declaration order (stable iteration for reports — a
    /// `HashMap<DeclineKind, _>` has no useful order of its own).
    pub const ALL: [DeclineKind; 14] = [
        DeclineKind::NotASegv,
        DeclineKind::UnknownPc,
        DeclineKind::UnprotectedModule,
        DeclineKind::NoLineInfo,
        DeclineKind::NoKernelForKey,
        DeclineKind::BadTable,
        DeclineKind::KernelMissing,
        DeclineKind::ParamUnavailable,
        DeclineKind::ParamFetchFault,
        DeclineKind::KernelFault,
        DeclineKind::SameAddress,
        DeclineKind::NoMemOperand,
        DeclineKind::UnpatchableOperand,
        DeclineKind::Hang,
    ];

    /// Telemetry counter name for this kind (static, since hook names are
    /// `&'static str` by design — no per-decline formatting).
    pub fn counter_name(self) -> &'static str {
        match self {
            DeclineKind::NotASegv => "recovery.decline.NotASegv",
            DeclineKind::UnknownPc => "recovery.decline.UnknownPc",
            DeclineKind::UnprotectedModule => "recovery.decline.UnprotectedModule",
            DeclineKind::NoLineInfo => "recovery.decline.NoLineInfo",
            DeclineKind::NoKernelForKey => "recovery.decline.NoKernelForKey",
            DeclineKind::BadTable => "recovery.decline.BadTable",
            DeclineKind::KernelMissing => "recovery.decline.KernelMissing",
            DeclineKind::ParamUnavailable => "recovery.decline.ParamUnavailable",
            DeclineKind::ParamFetchFault => "recovery.decline.ParamFetchFault",
            DeclineKind::KernelFault => "recovery.decline.KernelFault",
            DeclineKind::SameAddress => "recovery.decline.SameAddress",
            DeclineKind::NoMemOperand => "recovery.decline.NoMemOperand",
            DeclineKind::UnpatchableOperand => "recovery.decline.UnpatchableOperand",
            DeclineKind::Hang => "recovery.decline.Hang",
        }
    }

    /// Bare kind name (the counter name without its `recovery.decline.`
    /// namespace) — used by report tables and `BENCH_campaign.json`.
    pub fn short_name(self) -> &'static str {
        self.counter_name()
            .strip_prefix("recovery.decline.")
            .unwrap_or("unknown")
    }
}

impl std::fmt::Display for DeclineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Outcome of one `SIGSEGV` delivery.
#[derive(Clone, PartialEq, Debug)]
pub enum RecoveryOutcome {
    /// State repaired; the process may resume at the faulting PC.
    Recovered {
        /// Modelled time breakdown.
        time: RecoveryTime,
    },
    /// Declined: the default action (process death) proceeds.
    NotRecovered(DeclineReason),
}

/// Counters across a process lifetime.
#[derive(Clone, Debug, Default)]
pub struct SafeguardStats {
    /// Handler activations.
    pub activations: u64,
    /// Successful repairs.
    pub recovered: u64,
    /// Declines by reason kind.
    pub declined: HashMap<DeclineKind, u64>,
    /// Sum of modelled recovery milliseconds.
    pub total_recovery_ms: f64,
    /// Wall-clock seconds actually spent inside the handler.
    pub handler_wall_s: f64,
}

/// A module registered for protection: the encoded recovery table plus the
/// kernel library source.
#[derive(Debug)]
struct IndexedModule {
    encoded_table: Vec<u8>,
    /// Decoded table, memoized on the first fault that needs it (the real
    /// runtime holds only encoded bytes until a fault happens; we keep the
    /// decode *result* so a campaign decodes each table at most once per
    /// index, not once per trap).
    decoded: OnceLock<Result<RecoveryTable, String>>,
    kernel_module: Module,
    kernel_count: usize,
}

impl IndexedModule {
    fn table(&self) -> &Result<RecoveryTable, String> {
        self.decoded
            .get_or_init(|| RecoveryTable::decode(&self.encoded_table))
    }
}

impl Clone for IndexedModule {
    fn clone(&self) -> IndexedModule {
        IndexedModule {
            encoded_table: self.encoded_table.clone(),
            // The memo travels with the clone; a clash-free OnceLock clone.
            decoded: self.decoded.clone(),
            kernel_module: self.kernel_module.clone(),
            kernel_count: self.kernel_count,
        }
    }
}

/// The keyed recovery artefacts for every protected module of a process
/// layout — built once (e.g. per campaign) and shared read-only across
/// however many `Safeguard` instances evaluate injections concurrently.
#[derive(Clone, Debug, Default)]
pub struct RecoveryIndex {
    modules: HashMap<u32, IndexedModule>,
}

impl RecoveryIndex {
    /// An empty index (no module protected).
    pub fn new() -> RecoveryIndex {
        RecoveryIndex::default()
    }

    /// Register Armor's output for the module loaded as `module_id`.
    pub fn add(&mut self, module_id: ModuleId, armor_out: &ArmorOutput) {
        self.modules.insert(
            module_id.0,
            IndexedModule {
                encoded_table: armor_out.table.encode(),
                decoded: OnceLock::new(),
                kernel_module: armor_out.kernel_module.clone(),
                kernel_count: armor_out.stats.num_kernels,
            },
        );
    }

    /// Total bytes held for protection artefacts (tables; kernels live on
    /// disk until a fault, per the lazy-loading design).
    pub fn table_bytes(&self) -> u64 {
        self.modules.values().map(|p| p.encoded_table.len() as u64).sum()
    }
}

/// The Safeguard runtime.
pub struct Safeguard {
    /// Protection artefacts, shareable between Safeguard instances.
    index: Arc<RecoveryIndex>,
    /// Cost model for the simulated latencies.
    pub cost: CostModel,
    /// Ablation: patch the base register first instead of the index
    /// register (paper §3.4 argues index-first; the ablation quantifies
    /// why).
    pub patch_base_first: bool,
    /// Ablation: skip the address-equality guard of §5.2. DANGEROUS — this
    /// is exactly how heuristic recoveries (RCV/LetGo) manufacture SDCs.
    pub skip_equality_guard: bool,
    /// Lifetime statistics.
    pub stats: SafeguardStats,
    /// Fixed resident overhead in bytes: the paper measures 27 MB, mostly
    /// the LLVM + protobuf slices Safeguard links for table decoding.
    pub resident_overhead_bytes: u64,
}

/// The paper's fixed memory overhead (27 MB).
pub const SAFEGUARD_RESIDENT_BYTES: u64 = 27 * 1024 * 1024;

impl Safeguard {
    /// "Install the signal handler": constructing the value is the analogue
    /// of the `LD_PRELOAD` constructor calling `sigaction` (a few
    /// microseconds; nothing else happens until a fault).
    pub fn new() -> Safeguard {
        Safeguard::with_index(Arc::new(RecoveryIndex::new()))
    }

    /// Install the handler over a pre-built (possibly shared) recovery
    /// index. Campaigns build the index once in preparation and hand every
    /// per-injection Safeguard a clone of the same `Arc`.
    pub fn with_index(index: Arc<RecoveryIndex>) -> Safeguard {
        Safeguard {
            index,
            cost: CostModel::default(),
            patch_base_first: false,
            skip_equality_guard: false,
            stats: SafeguardStats::default(),
            resident_overhead_bytes: SAFEGUARD_RESIDENT_BYTES,
        }
    }

    /// Register Armor's output for the module loaded as `module_id` in the
    /// target process (the executable and each CARE-built library register
    /// separately, as in §5.5's BLAS experiment). Unshares the index if it
    /// was shared.
    pub fn protect(&mut self, module_id: ModuleId, armor_out: &ArmorOutput) {
        Arc::make_mut(&mut self.index).add(module_id, armor_out);
    }

    /// Total bytes held for protection artefacts (tables; kernels live on
    /// disk until a fault, per the lazy-loading design).
    pub fn table_bytes(&self) -> u64 {
        self.index.table_bytes()
    }

    /// Algorithm 1. `process` must be frozen at a trap.
    pub fn handle_trap(&mut self, process: &mut Process, trap: Trap) -> RecoveryOutcome {
        self.handle_trap_with_hooks(process, trap, &telemetry::NoTelemetry)
    }

    /// [`handle_trap`](Self::handle_trap) with telemetry hooks.
    ///
    /// With hooks enabled, a successful recovery records a span per
    /// Algorithm 1 phase (`recovery.<phase>_ns`: diagnose/PC→key, table
    /// decode, library load, parameter fetch, kernel execution, disassemble
    /// and register patch) plus the preparation fraction in basis points
    /// (`recovery.prep_bp`). Phase spans carry the **modelled** CostModel
    /// milliseconds converted to nanoseconds — deterministic by
    /// construction, so a telemetry-enabled campaign reproduces the same
    /// distribution on every run and the >98 %-preparation claim becomes a
    /// measured, reproducible histogram rather than one arithmetic check.
    /// The only wall-clock sample is `safeguard.handler_wall_ns` (the
    /// simulator's own handler overhead).
    pub fn handle_trap_with_hooks<H: telemetry::Hooks>(
        &mut self,
        process: &mut Process,
        trap: Trap,
        hooks: &H,
    ) -> RecoveryOutcome {
        let wall = std::time::Instant::now();
        let out = self.handle_inner(process, trap);
        self.stats.handler_wall_s += wall.elapsed().as_secs_f64();
        self.stats.activations += 1;
        if H::ENABLED {
            hooks.add("recovery.activations", 1);
            hooks.record("safeguard.handler_wall_ns", wall.elapsed().as_nanos() as u64);
        }
        match &out {
            RecoveryOutcome::Recovered { time } => {
                self.stats.recovered += 1;
                self.stats.total_recovery_ms += time.total_ms();
                if H::ENABLED {
                    hooks.add("recovery.recovered", 1);
                    let ns = |ms: f64| (ms * 1e6) as u64;
                    hooks.record("recovery.diagnose_ns", ns(time.diagnose_ms));
                    hooks.record("recovery.table_ns", ns(time.table_ms));
                    hooks.record("recovery.load_ns", ns(time.load_ms));
                    hooks.record("recovery.params_ns", ns(time.params_ms));
                    hooks.record("recovery.kernel_ns", ns(time.kernel_ms));
                    hooks.record("recovery.patch_ns", ns(time.patch_ms));
                    hooks.record("recovery.total_ns", ns(time.total_ms()));
                    let bp = time.preparation_bp();
                    hooks.record("recovery.prep_bp", bp);
                    if bp > 9800 {
                        hooks.add("recovery.prep_over_98pct", 1);
                    }
                    hooks.emit(|| {
                        telemetry::Event::new("recovery")
                            .field("pc", trap.pc)
                            .field("total_ms", time.total_ms())
                            .field("prep_bp", bp)
                            .field("kernel_ns", ns(time.kernel_ms))
                    });
                }
            }
            RecoveryOutcome::NotRecovered(r) => {
                let kind = r.kind();
                *self.stats.declined.entry(kind).or_default() += 1;
                if H::ENABLED {
                    hooks.add("recovery.declined", 1);
                    hooks.add(kind.counter_name(), 1);
                }
            }
        }
        out
    }

    fn handle_inner(&mut self, process: &mut Process, trap: Trap) -> RecoveryOutcome {
        use RecoveryOutcome::NotRecovered;
        let mut time = RecoveryTime::default();

        // (1)(2) Which signal, which module?
        let TrapKind::Segv(fault_addr) = trap.kind else {
            return NotRecovered(DeclineReason::NotASegv);
        };
        let Some((mid, offset)) = process.image.dladdr(trap.pc) else {
            return NotRecovered(DeclineReason::UnknownPc);
        };
        time.diagnose_ms += self.cost.diagnose_ms;
        let Some(prot) = self.index.modules.get(&mid.0) else {
            return NotRecovered(DeclineReason::UnprotectedModule);
        };

        // (3) PC -> (file, line, col) key. `dladdr` answered for this module
        // id, but a hostile/stale trap context could still name a module the
        // image does not hold — treat that like a wild PC, not a panic.
        let Some(lm) = process.image.modules.get(mid.0 as usize) else {
            return NotRecovered(DeclineReason::UnknownPc);
        };
        let Some(loc) = lm.module.debug.loc_for_offset(offset) else {
            return NotRecovered(DeclineReason::NoLineInfo);
        };
        let key = RecoveryKey::for_loc(&lm.module.ir, loc);

        // (4) Decode the table (memoized across traps) and look up the
        // kernel. The *modelled* decode cost is still charged per trap —
        // the real runtime re-decodes on each fault — so recovery-time
        // figures are unchanged; only the simulator's own wall clock wins.
        let table = match prot.table() {
            Ok(t) => t,
            Err(e) => return NotRecovered(DeclineReason::BadTable(e.clone())),
        };
        time.table_ms +=
            (prot.encoded_table.len() as f64 / 1024.0) * self.cost.table_decode_per_kib_ms;
        let Some(entry) = table.lookup(&key) else {
            return NotRecovered(DeclineReason::NoKernelForKey(format!(
                "{}:{}:{}",
                lm.module.ir.file_name(loc.file),
                loc.line,
                loc.col
            )));
        };

        // (5) dlopen + dlsym. A table entry naming a kernel the library does
        // not define (or only declares) is a dlsym miss: decline, don't
        // panic in the arena lookup below.
        let kfid = entry.kernel;
        match prot.kernel_module.funcs.get(kfid.0 as usize) {
            None => return NotRecovered(DeclineReason::KernelMissing(entry.symbol.clone())),
            Some(f) if f.is_decl => {
                return NotRecovered(DeclineReason::KernelMissing(entry.symbol.clone()))
            }
            Some(f) if f.params.len() != entry.params.len() => {
                return NotRecovered(DeclineReason::BadTable(format!(
                    "entry for {} passes {} params, kernel takes {}",
                    entry.symbol,
                    entry.params.len(),
                    f.params.len()
                )));
            }
            Some(_) => {}
        }
        time.load_ms += self.cost.dlopen_base_ms
            + prot.kernel_count as f64 * self.cost.dlopen_per_kernel_ms
            + self.cost.dlsym_ms;

        // (6) Fetch parameters via DWARF locations. A process with no live
        // frame has no registers to read from (trap delivered before main
        // ran, or after the last frame popped): nothing to repair.
        if process.frames.is_empty() {
            return NotRecovered(DeclineReason::UnknownPc);
        }
        let fp = process.read_reg(FP);
        let mut args = Vec::with_capacity(entry.params.len());
        for spec in &entry.params {
            time.params_ms += self.cost.param_fetch_ms;
            let bits = match spec {
                ParamSpec::Const(v) => *v,
                ParamSpec::GlobalAddr { name } => {
                    match process.image.global_addr_by_name(name) {
                        Some(a) => a,
                        None => {
                            return NotRecovered(DeclineReason::ParamUnavailable(name.clone()))
                        }
                    }
                }
                ParamSpec::Die { name } => {
                    match lm.module.debug.var_place(name, offset) {
                        Some(VarPlace::Reg(r)) => process.read_reg(r),
                        Some(VarPlace::FrameOffset(off)) => {
                            match process.mem.load(fp.wrapping_add(off as u64), 8) {
                                Ok(v) => v,
                                Err(_) => {
                                    return NotRecovered(DeclineReason::ParamFetchFault)
                                }
                            }
                        }
                        None => {
                            return NotRecovered(DeclineReason::ParamUnavailable(name.clone()))
                        }
                    }
                }
            };
            args.push(bits);
        }
        time.params_ms += self.cost.ffi_setup_ms;

        // (7) Execute the kernel over the process's memory ("ffi_call").
        let globals = lm.global_addrs.clone();
        let kernel_mod = &prot.kernel_module;
        let mut interp = tinyir::interp::Interp::new(
            kernel_mod,
            &mut process.mem,
            &globals,
            // Scratch stack window for the handler frame, far from the app.
            0x7abc_0000_0000,
            0x7abc_0010_0000,
            0x7abd_0000_0000,
            100_000,
        );
        let kernel_addr = match interp.call(entry.kernel, &args) {
            Ok(Some(v)) => v,
            Ok(None) | Err(_) => return NotRecovered(DeclineReason::KernelFault),
        };
        time.kernel_ms += interp.steps as f64 * self.cost.kernel_per_instr_ms;

        // (8) The no-SDC guard.
        if kernel_addr == fault_addr && !self.skip_equality_guard {
            return NotRecovered(DeclineReason::SameAddress);
        }

        // (9) Disassemble the faulting instruction (the capstone/udis86
        // step) to find which operand refers to memory, then patch it.
        let Some(inst) = process.current_inst().cloned() else {
            return NotRecovered(DeclineReason::UnknownPc);
        };
        let Some(mem) = simx::decode(&inst).mem else {
            return NotRecovered(DeclineReason::NoMemOperand);
        };
        let patch = if self.patch_base_first {
            compute_patch_base_first(&mem, kernel_addr, |r| process.read_reg(r))
        } else {
            compute_patch(&mem, kernel_addr, |r| process.read_reg(r))
        };
        match patch {
            Some((reg, value)) => {
                process.write_reg(reg, value);
                // Paranoia: after the patch the operand must resolve to the
                // kernel-computed address.
                debug_assert_eq!(
                    effective_addr(&mem, process.frame()),
                    kernel_addr,
                    "patch arithmetic"
                );
                time.patch_ms += self.cost.patch_resume_ms;
                RecoveryOutcome::Recovered { time }
            }
            None => NotRecovered(DeclineReason::UnpatchableOperand),
        }
    }
}

impl Default for Safeguard {
    fn default() -> Self {
        Safeguard::new()
    }
}

/// Decide which register of `disp(base,index,scale)` to patch and with what
/// value so the operand resolves to `target`.
///
/// Per the paper: the **index register is updated by default** (indexes are
/// recomputed more often than bases and are therefore the likelier victims),
/// recomputing it from the base register's value; if the operand has no
/// index, the base register is patched instead.
pub fn compute_patch(
    mem: &MemOp,
    target: u64,
    read: impl Fn(simx::Reg) -> u64,
) -> Option<(simx::Reg, u64)> {
    match (mem.base, mem.index) {
        (base, Some(idx)) => {
            let base_val = base.map(&read).unwrap_or(0);
            let delta = target
                .wrapping_sub(base_val)
                .wrapping_sub(mem.disp as u64);
            let scale = mem.scale.max(1) as u64;
            if delta % scale == 0 {
                Some((idx, delta / scale))
            } else if let Some(b) = base {
                // Index cannot express the target (scale mismatch): fall
                // back to repairing the base register.
                let idx_val = read(idx).wrapping_mul(scale);
                Some((
                    b,
                    target.wrapping_sub(idx_val).wrapping_sub(mem.disp as u64),
                ))
            } else {
                None
            }
        }
        (Some(b), None) => Some((b, target.wrapping_sub(mem.disp as u64))),
        (None, None) => None,
    }
}

/// The base-first variant used by the patching-strategy ablation.
pub fn compute_patch_base_first(
    mem: &MemOp,
    target: u64,
    read: impl Fn(simx::Reg) -> u64,
) -> Option<(simx::Reg, u64)> {
    match (mem.base, mem.index) {
        (Some(b), index) => {
            let idx_val = index
                .map(|i| read(i).wrapping_mul(mem.scale.max(1) as u64))
                .unwrap_or(0);
            Some((
                b,
                target.wrapping_sub(idx_val).wrapping_sub(mem.disp as u64),
            ))
        }
        (None, Some(_)) => compute_patch(mem, target, read),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx::Reg;

    #[test]
    fn patch_prefers_index_register() {
        let mem = MemOp::base_index(Reg::gpr(3), Reg::gpr(8), 8, 16);
        let read = |r: Reg| match r.0 {
            3 => 0x1000u64,
            8 => 999, // corrupted index
            _ => 0,
        };
        let (reg, val) = compute_patch(&mem, 0x1000 + 5 * 8 + 16, read).unwrap();
        assert_eq!(reg, Reg::gpr(8));
        assert_eq!(val, 5);
    }

    #[test]
    fn patch_falls_back_to_base_on_scale_mismatch() {
        let mem = MemOp::base_index(Reg::gpr(3), Reg::gpr(8), 8, 0);
        let read = |r: Reg| match r.0 {
            3 => 0x1000u64,
            8 => 2,
            _ => 0,
        };
        // Target not expressible as 0x1000 + 8k: patch base instead.
        let (reg, val) = compute_patch(&mem, 0x2003, read).unwrap();
        assert_eq!(reg, Reg::gpr(3));
        assert_eq!(val, 0x2003 - 16);
    }

    #[test]
    fn patch_base_only_operand() {
        let mem = MemOp::base_disp(Reg::gpr(5), -8);
        let (reg, val) = compute_patch(&mem, 0x5000, |_| 0xdead).unwrap();
        assert_eq!(reg, Reg::gpr(5));
        assert_eq!(val, 0x5008);
    }

    #[test]
    fn absolute_operand_cannot_be_patched() {
        let mem = MemOp { base: None, index: None, scale: 1, disp: 0x1234 };
        assert!(compute_patch(&mem, 0x5000, |_| 0).is_none());
    }
}
