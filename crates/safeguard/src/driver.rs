//! The protected-execution driver: run a SimISA process, routing every trap
//! through Safeguard, until completion or an unrecoverable failure.
//!
//! This is the analogue of the kernel delivering `SIGSEGV` to the
//! `LD_PRELOAD`ed handler and either `sigreturn`ing into the patched context
//! or falling through to the default action (process death).

use crate::runtime::{DeclineReason, RecoveryOutcome, Safeguard};
use simx::{Process, RunExit, Trap, TrapKind};

/// Final outcome of a protected run.
#[derive(Clone, PartialEq, Debug)]
pub enum ProtectedExit {
    /// The program completed (possibly after recoveries).
    Completed {
        /// Raw-bit return value of the start function.
        result: Option<u64>,
        /// Number of successful recoveries along the way.
        recoveries: u64,
        /// Total modelled recovery time.
        recovery_ms: f64,
    },
    /// The program died on an unrecoverable trap.
    Crashed {
        /// The fatal trap.
        trap: Trap,
        /// Why Safeguard declined.
        reason: DeclineReason,
        /// Recoveries that *did* succeed before the fatal one.
        recoveries: u64,
    },
    /// Instruction budget exhausted (hang).
    Hung,
}

/// Run `process` to completion under `safeguard`'s protection.
///
/// `max_recoveries` bounds the number of repairs (a single injected fault
/// can legitimately require several activations — §5.3 — but a runaway
/// repair loop means something is structurally wrong).
pub fn run_protected(
    process: &mut Process,
    safeguard: &mut Safeguard,
    max_recoveries: u64,
) -> ProtectedExit {
    run_protected_with_hooks(process, safeguard, max_recoveries, &telemetry::NoTelemetry)
}

/// [`run_protected`] with telemetry hooks, threaded through to
/// [`Safeguard::handle_trap_with_hooks`]. The simulation loop itself stays
/// uninstrumented — `Process::run` is the hot path and hooks only observe
/// its trap exits.
pub fn run_protected_with_hooks<H: telemetry::Hooks>(
    process: &mut Process,
    safeguard: &mut Safeguard,
    max_recoveries: u64,
    hooks: &H,
) -> ProtectedExit {
    run_protected_engine_with_hooks(&simx::InterpEngine, process, safeguard, max_recoveries, hooks)
}

/// [`run_protected_with_hooks`] with the simulation loop routed through an
/// [`ExecutionEngine`](simx::ExecutionEngine), so campaigns can drive the
/// protected path on the compiled backend. Trap handling is engine-agnostic:
/// both engines freeze the faulting frame identically, so Safeguard's
/// patch-and-resume works unchanged.
pub fn run_protected_engine_with_hooks<H: telemetry::Hooks>(
    engine: &dyn simx::ExecutionEngine,
    process: &mut Process,
    safeguard: &mut Safeguard,
    max_recoveries: u64,
    hooks: &H,
) -> ProtectedExit {
    let mut recoveries = 0u64;
    let mut recovery_ms = 0.0f64;
    loop {
        match engine.run(process) {
            RunExit::Done(result) => {
                return ProtectedExit::Completed { result, recoveries, recovery_ms }
            }
            RunExit::BreakHit => continue, // injector breakpoints are consumed upstream
            RunExit::Trapped(trap) => {
                if trap.kind == TrapKind::OutOfFuel {
                    return ProtectedExit::Hung;
                }
                if recoveries >= max_recoveries {
                    return ProtectedExit::Crashed {
                        trap,
                        reason: DeclineReason::SameAddress,
                        recoveries,
                    };
                }
                match safeguard.handle_trap_with_hooks(process, trap, hooks) {
                    RecoveryOutcome::Recovered { time } => {
                        recoveries += 1;
                        recovery_ms += time.total_ms();
                        // resume: loop re-enters run() at the faulting PC
                    }
                    RecoveryOutcome::NotRecovered(reason) => {
                        return ProtectedExit::Crashed { trap, reason, recoveries }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armor::run_armor;
    use simx::{compile_module, DestRef, ModuleId, Process};
    use tinyir::builder::ModuleBuilder;
    use tinyir::{Ty, Value};

    /// End-to-end: compile an app with Armor + DIEs, corrupt an index
    /// register mid-run, and watch Safeguard repair it.
    #[test]
    fn recovers_corrupted_index_register() {
        // sum = Σ table[i*2 + 1] for i in 0..n — a real address computation.
        let mut mb = ModuleBuilder::new("app", "app.c");
        let table = mb.global_init(
            "table",
            Ty::I64,
            64,
            tinyir::GlobalInit::I64s((0..64).collect()),
        );
        mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
            let acc = fb.alloca(Ty::I64, 1);
            fb.store(Value::i64(0), acc);
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, iv| {
                let i2 = fb.mul(iv, Value::i64(2), Ty::I64);
                let idx = fb.add(i2, Value::i64(1), Ty::I64);
                let v = fb.load_elem(fb.global(table), idx, Ty::I64);
                let a = fb.load(acc, Ty::I64);
                let s = fb.add(a, v, Ty::I64);
                fb.store(s, acc);
            });
            let r = fb.load(acc, Ty::I64);
            fb.ret(Some(r));
        });
        let mut m = mb.finish();
        opt::optimize(&mut m, opt::OptLevel::O1);
        let armor_out = run_armor(&m);
        assert!(armor_out.stats.num_kernels >= 1);
        let mm = compile_module(&m, true, &armor_out.die_requests);

        let expected: i64 = (0..10).map(|i| i * 2 + 1).sum();

        // Fault-free baseline.
        let mut p = Process::new(mm.clone(), vec![]);
        p.start("main", &[10]);
        let mut sg = Safeguard::new();
        sg.protect(ModuleId(0), &armor_out);
        match run_protected(&mut p, &mut sg, 16) {
            ProtectedExit::Completed { result, recoveries, .. } => {
                assert_eq!(result, Some(expected as u64));
                assert_eq!(recoveries, 0);
            }
            other => panic!("baseline failed: {other:?}"),
        }

        // Now corrupt: break right after the table load executes its 4th
        // iteration, then smash the register holding the index.
        let fid = mm.func_by_name("main").unwrap();
        let (load_idx, mem_op) = mm.funcs[fid.0 as usize]
            .instrs
            .iter()
            .enumerate()
            .find_map(|(i, inst)| {
                // The load may have folded CISC-style into its consumer;
                // search any instruction with an indexed memory operand
                // that is not a frame-slot access.
                inst.mem_operand()
                    .filter(|mo| mo.index.is_some() && mo.base != Some(simx::FP))
                    .map(|mo| (i, *mo))
            })
            .expect("indexed memory operand in machine code");
        // The index register is redefined every iteration, so a flip must
        // land in the window between its definition (the `add`) and its use
        // (the folded load): break right after the defining instruction.
        let idx_reg = mem_op.index.unwrap();
        let def_idx = mm.funcs[fid.0 as usize].instrs[..load_idx]
            .iter()
            .rposition(|inst| inst.dest_reg() == Some(idx_reg))
            .expect("defining instruction of the index register");
        let mut p = Process::new(mm, vec![]);
        p.start("main", &[10]);
        p.break_at = Some((ModuleId(0), fid, def_idx, 4));
        assert_eq!(p.run(), RunExit::BreakHit);
        // Corrupt the just-written index register with a high bit flip.
        let old = p.read_reg(idx_reg);
        p.write_reg(idx_reg, old ^ (1 << 40));
        let mut sg = Safeguard::new();
        sg.protect(ModuleId(0), &armor_out);
        match run_protected(&mut p, &mut sg, 16) {
            ProtectedExit::Completed { result, recoveries, recovery_ms } => {
                assert_eq!(result, Some(expected as u64), "output must be exact");
                assert!(recoveries >= 1, "at least one repair");
                assert!(recovery_ms > 1.0, "modelled recovery time accrues");
            }
            other => panic!("recovery failed: {other:?}"),
        }
        assert_eq!(sg.stats.recovered, sg.stats.activations);
        let _ = DestRef::Pc;
    }

    /// A genuine program bug (out-of-bounds by construction) must be
    /// declined by the same-address guard and crash, not silently
    /// "repaired" (paper footnote 2).
    #[test]
    fn genuine_bug_is_not_masked() {
        let mut mb = ModuleBuilder::new("app", "app.c");
        let g = mb.global_zeroed("arr", Ty::I64, 8);
        mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
            // idx = n * 1000 — legitimately out of range for n >= 1.
            let idx = fb.mul(fb.arg(0), Value::i64(1000), Ty::I64);
            let v = fb.load_elem(fb.global(g), idx, Ty::I64);
            fb.ret(Some(v));
        });
        let m = mb.finish();
        let armor_out = run_armor(&m);
        let mm = compile_module(&m, false, &armor_out.die_requests);
        let mut p = Process::new(mm, vec![]);
        p.start("main", &[5]);
        let mut sg = Safeguard::new();
        sg.protect(ModuleId(0), &armor_out);
        match run_protected(&mut p, &mut sg, 16) {
            ProtectedExit::Crashed { reason, recoveries, .. } => {
                assert_eq!(reason, DeclineReason::SameAddress);
                assert_eq!(recoveries, 0);
            }
            other => panic!("bug must crash: {other:?}"),
        }
    }

    /// A table entry naming a kernel the library does not contain (a dlsym
    /// miss) must decline with `KernelMissing`, not panic the handler.
    #[test]
    fn missing_kernel_symbol_declines() {
        let (m, armor_out) = out_of_bounds_app();
        let mut broken = armor_out.clone();
        let mut t2 = armor::RecoveryTable::new();
        for (k, e) in armor_out.table.iter() {
            t2.insert(
                *k,
                armor::TableEntry {
                    symbol: e.symbol.clone(),
                    kernel: tinyir::FuncId(9999),
                    params: e.params.clone(),
                },
            );
        }
        broken.table = t2;
        let mm = compile_module(&m, false, &broken.die_requests);
        let mut p = Process::new(mm, vec![]);
        p.start("main", &[5]);
        let mut sg = Safeguard::new();
        sg.protect(ModuleId(0), &broken);
        match run_protected(&mut p, &mut sg, 4) {
            ProtectedExit::Crashed { reason, .. } => {
                assert!(
                    matches!(reason, DeclineReason::KernelMissing(_)),
                    "{reason:?}"
                );
            }
            other => panic!("must crash with a typed decline: {other:?}"),
        }
    }

    /// A table entry whose parameter list disagrees with the kernel's arity
    /// is a corrupted artefact: decline with `BadTable`.
    #[test]
    fn param_arity_mismatch_declines() {
        let (m, armor_out) = out_of_bounds_app();
        let mut broken = armor_out.clone();
        let mut t2 = armor::RecoveryTable::new();
        for (k, e) in armor_out.table.iter() {
            let mut params = e.params.clone();
            params.push(armor::ParamSpec::Const(0)); // one extra arg
            t2.insert(
                *k,
                armor::TableEntry {
                    symbol: e.symbol.clone(),
                    kernel: e.kernel,
                    params,
                },
            );
        }
        broken.table = t2;
        let mm = compile_module(&m, false, &broken.die_requests);
        let mut p = Process::new(mm, vec![]);
        p.start("main", &[5]);
        let mut sg = Safeguard::new();
        sg.protect(ModuleId(0), &broken);
        match run_protected(&mut p, &mut sg, 4) {
            ProtectedExit::Crashed { reason, .. } => {
                assert!(matches!(reason, DeclineReason::BadTable(_)), "{reason:?}");
            }
            other => panic!("must crash with a typed decline: {other:?}"),
        }
    }

    /// A module whose table-indexed app faults at an address computation:
    /// arr[n*1000] for n=5 is far out of the 8-element global.
    fn out_of_bounds_app() -> (tinyir::Module, armor::ArmorOutput) {
        let mut mb = ModuleBuilder::new("app", "app.c");
        let g = mb.global_zeroed("arr", Ty::I64, 8);
        mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
            let idx = fb.mul(fb.arg(0), Value::i64(1000), Ty::I64);
            let v = fb.load_elem(fb.global(g), idx, Ty::I64);
            fb.ret(Some(v));
        });
        let m = mb.finish();
        let out = run_armor(&m);
        assert!(out.stats.num_kernels >= 1);
        (m, out)
    }

    /// Faults in an unprotected signal class (SIGFPE) propagate.
    #[test]
    fn non_segv_traps_propagate() {
        let mut mb = ModuleBuilder::new("app", "app.c");
        mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
            let q = fb.sdiv(Value::i64(100), fb.arg(0), Ty::I64);
            fb.ret(Some(q));
        });
        let m = mb.finish();
        let armor_out = run_armor(&m);
        let mm = compile_module(&m, false, &[]);
        let mut p = Process::new(mm, vec![]);
        p.start("main", &[0]);
        let mut sg = Safeguard::new();
        sg.protect(ModuleId(0), &armor_out);
        match run_protected(&mut p, &mut sg, 4) {
            ProtectedExit::Crashed { trap, reason, .. } => {
                assert_eq!(trap.kind, TrapKind::Fpe);
                assert_eq!(reason, DeclineReason::NotASegv);
            }
            other => panic!("{other:?}"),
        }
    }
}
