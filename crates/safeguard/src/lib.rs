//! # safeguard — CARE's runtime half
//!
//! The analogue of the paper's `LD_PRELOAD`ed recovery library: a `SIGSEGV`
//! "handler" ([`runtime::Safeguard::handle_trap`], Algorithm 1), a cost
//! model for the latencies the simulation cannot measure natively
//! ([`cost::CostModel`]), and the protected-execution driver
//! ([`driver::run_protected`]) that routes SimISA traps through the handler
//! and resumes the patched process.

pub mod cost;
pub mod driver;
pub mod runtime;

pub use cost::{CostModel, RecoveryTime};
pub use driver::{
    run_protected, run_protected_engine_with_hooks, run_protected_with_hooks, ProtectedExit,
};
pub use runtime::{
    compute_patch, compute_patch_base_first, DeclineKind, DeclineReason, RecoveryIndex,
    RecoveryOutcome, Safeguard, SafeguardStats, SAFEGUARD_RESIDENT_BYTES,
};

mod hardening;
