//! Failure injection in the recovery path itself (DESIGN.md §6): Safeguard
//! must *decline and propagate* — never crash, hang, or mis-patch — when its
//! own artefacts are damaged or missing.

#[cfg(test)]
mod tests {
    use crate::driver::{run_protected, ProtectedExit};
    use crate::runtime::{DeclineKind, DeclineReason, Safeguard};
    use armor::run_armor;
    use simx::{compile_module, ModuleId, Process, RunExit};
    use tinyir::builder::ModuleBuilder;
    use tinyir::{Module, Ty, Value};

    /// An app whose loop index can be corrupted into a recoverable SIGSEGV.
    fn victim() -> Module {
        let mut mb = ModuleBuilder::new("victim", "victim.c");
        let t = mb.global_init(
            "t",
            Ty::I64,
            64,
            tinyir::GlobalInit::I64s((0..64).collect()),
        );
        mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
            let acc = fb.alloca(Ty::I64, 1);
            fb.store(Value::i64(0), acc);
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, iv| {
                let i2 = fb.mul(iv, Value::i64(2), Ty::I64);
                let v = fb.load_elem(fb.global(t), i2, Ty::I64);
                let a = fb.load(acc, Ty::I64);
                let s = fb.add(a, v, Ty::I64);
                fb.store(s, acc);
            });
            let r = fb.load(acc, Ty::I64);
            fb.ret(Some(r));
        });
        mb.finish()
    }

    /// Set up a process frozen right after the index-defining instruction,
    /// with the index register corrupted.
    fn corrupted_process(armor_dies: bool) -> (Process, armor::ArmorOutput) {
        let m = victim();
        let armor_out = run_armor(&m);
        let dies = if armor_dies { armor_out.die_requests.clone() } else { vec![] };
        // Register mode folds the gep into an indexed operand — the shape
        // whose index register we corrupt.
        let mm = compile_module(&m, true, &dies);
        let fid = mm.func_by_name("main").unwrap();
        let (mem_idx, mem_op) = mm.funcs[fid.0 as usize]
            .instrs
            .iter()
            .enumerate()
            .find_map(|(i, inst)| {
                inst.mem_operand()
                    .filter(|mo| mo.index.is_some() && mo.base != Some(simx::FP))
                    .map(|mo| (i, *mo))
            })
            .expect("indexed memory operand");
        let idx_reg = mem_op.index.unwrap();
        let def_idx = mm.funcs[fid.0 as usize].instrs[..mem_idx]
            .iter()
            .rposition(|inst| inst.dest_reg() == Some(idx_reg))
            .unwrap();
        let mut p = Process::new(mm, vec![]);
        p.start("main", &[20]);
        p.break_at = Some((ModuleId(0), fid, def_idx, 5));
        assert_eq!(p.run(), RunExit::BreakHit);
        let v = p.read_reg(idx_reg);
        p.write_reg(idx_reg, v ^ (1 << 44));
        (p, armor_out)
    }

    #[test]
    fn baseline_recovers() {
        let (mut p, armor_out) = corrupted_process(true);
        let mut sg = Safeguard::new();
        sg.protect(ModuleId(0), &armor_out);
        match run_protected(&mut p, &mut sg, 8) {
            ProtectedExit::Completed { recoveries, .. } => assert!(recoveries >= 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unprotected_module_declines_cleanly() {
        let (mut p, _armor_out) = corrupted_process(true);
        let mut sg = Safeguard::new(); // nothing registered
        match run_protected(&mut p, &mut sg, 8) {
            ProtectedExit::Crashed { reason, .. } => {
                assert_eq!(reason, DeclineReason::UnprotectedModule);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn corrupted_recovery_table_declines_cleanly() {
        let (mut p, mut armor_out) = corrupted_process(true);
        // Smash the table by replacing it with garbage entries: Safeguard
        // must detect the damage during decode, not misbehave.
        let mut sg = Safeguard::new();
        armor_out.table = {
            let bytes = armor_out.table.encode();
            let mut broken = bytes.clone();
            for b in broken.iter_mut().skip(4) {
                *b = b.wrapping_add(97);
            }
            // Decode of broken bytes must fail cleanly (no over-allocation
            // abort, no panic)...
            assert!(armor::RecoveryTable::decode(&broken).is_err());
            let mut truncated = bytes.clone();
            truncated.truncate(bytes.len().saturating_sub(5));
            assert!(armor::RecoveryTable::decode(&truncated).is_err());
            // ...so hand Safeguard an empty-but-valid table instead to model
            // a "kernel missing" artefact mismatch.
            armor::RecoveryTable::new()
        };
        sg.protect(ModuleId(0), &armor_out);
        match run_protected(&mut p, &mut sg, 8) {
            ProtectedExit::Crashed { reason, .. } => {
                assert!(
                    matches!(reason, DeclineReason::NoKernelForKey(_)),
                    "{reason:?}"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_dies_decline_as_param_unavailable() {
        // Compile WITHOUT emitting the DIEs Armor asked for: the kernel
        // exists but its parameters cannot be located.
        let (mut p, armor_out) = corrupted_process(false);
        let needs_dies = armor_out
            .table
            .iter()
            .any(|(_, e)| e.params.iter().any(|s| matches!(s, armor::ParamSpec::Die { .. })));
        let mut sg = Safeguard::new();
        sg.protect(ModuleId(0), &armor_out);
        match run_protected(&mut p, &mut sg, 8) {
            ProtectedExit::Crashed { reason, .. } if needs_dies => {
                assert!(
                    matches!(reason, DeclineReason::ParamUnavailable(_)),
                    "{reason:?}"
                );
            }
            ProtectedExit::Completed { .. } if !needs_dies => {}
            other => panic!("needs_dies={needs_dies}: {other:?}"),
        }
    }

    #[test]
    fn handler_statistics_track_declines() {
        let (mut p, _armor_out) = corrupted_process(true);
        let mut sg = Safeguard::new();
        let _ = run_protected(&mut p, &mut sg, 8);
        assert_eq!(sg.stats.activations, 1);
        assert_eq!(sg.stats.recovered, 0);
        assert_eq!(sg.stats.declined.get(&DeclineKind::UnprotectedModule), Some(&1));
    }

    #[test]
    fn max_recoveries_bounds_repair_loops() {
        // With an artificially broken patch strategy (base-first on an
        // index corruption the kernel can't see), the driver must not loop
        // forever.
        let (mut p, armor_out) = corrupted_process(true);
        let mut sg = Safeguard::new();
        sg.protect(ModuleId(0), &armor_out);
        // Zero budget: the very first trap crashes.
        match run_protected(&mut p, &mut sg, 0) {
            ProtectedExit::Crashed { recoveries, .. } => assert_eq!(recoveries, 0),
            other => panic!("{other:?}"),
        }
    }
}
