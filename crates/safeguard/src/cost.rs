//! Recovery-time cost model.
//!
//! The paper reports (Fig. 9) recoveries of a few tens of milliseconds, with
//! **more than 98 % of the time spent preparing** the kernel execution —
//! diagnosing the failure, loading the recovery table and library, and
//! retrieving arguments from the stalled process — and a negligible share in
//! the generated kernel itself. Our runtime executes the real kernel and
//! the real table decode, but `dlopen`/`libdwarf`/`libffi` latencies have no
//! native analogue in the simulation, so they are modelled by this cost
//! structure (calibrated to the paper's reported magnitudes on the authors'
//! hardware class).

/// Tunable cost constants, all in milliseconds.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// `dladdr` + line-table search for the faulting PC.
    pub diagnose_ms: f64,
    /// Fixed `dlopen` cost for the recovery library.
    pub dlopen_base_ms: f64,
    /// Additional `dlopen`/relocation cost per kernel in the library.
    pub dlopen_per_kernel_ms: f64,
    /// Recovery-table decode cost per KiB (protobuf parse).
    pub table_decode_per_kib_ms: f64,
    /// `dlsym` lookup.
    pub dlsym_ms: f64,
    /// DWARF DIE decode + `ptrace`-style fetch, per parameter.
    pub param_fetch_ms: f64,
    /// `libffi` call setup.
    pub ffi_setup_ms: f64,
    /// Kernel execution cost per interpreted IR instruction.
    pub kernel_per_instr_ms: f64,
    /// Disassembly + register patch + `sigreturn`.
    pub patch_resume_ms: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            diagnose_ms: 2.5,
            dlopen_base_ms: 6.0,
            dlopen_per_kernel_ms: 0.004,
            table_decode_per_kib_ms: 0.08,
            dlsym_ms: 0.3,
            param_fetch_ms: 0.9,
            ffi_setup_ms: 0.4,
            kernel_per_instr_ms: 0.0004,
            patch_resume_ms: 0.6,
        }
    }
}

/// Accumulated breakdown of one recovery activation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RecoveryTime {
    /// Diagnosis (PC → module → key).
    pub diagnose_ms: f64,
    /// Table load + decode.
    pub table_ms: f64,
    /// Library load + symbol resolution.
    pub load_ms: f64,
    /// Parameter retrieval.
    pub params_ms: f64,
    /// Kernel execution.
    pub kernel_ms: f64,
    /// Operand patch + resume.
    pub patch_ms: f64,
}

impl RecoveryTime {
    /// Total milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.diagnose_ms
            + self.table_ms
            + self.load_ms
            + self.params_ms
            + self.kernel_ms
            + self.patch_ms
    }

    /// Fraction of the total spent on preparation (everything except the
    /// kernel itself) — the paper's ">98 %" claim.
    pub fn preparation_fraction(&self) -> f64 {
        let t = self.total_ms();
        if t == 0.0 {
            0.0
        } else {
            (t - self.kernel_ms) / t
        }
    }

    /// The breakdown as named phases, in Algorithm 1 order. This is the one
    /// place the field→phase-name mapping lives; the telemetry span names
    /// are derived from these (`recovery.<phase>_ns`) and the repro summary
    /// prints them in this order.
    pub fn phases(&self) -> [(&'static str, f64); 6] {
        [
            ("diagnose", self.diagnose_ms),
            ("table", self.table_ms),
            ("load", self.load_ms),
            ("params", self.params_ms),
            ("kernel", self.kernel_ms),
            ("patch", self.patch_ms),
        ]
    }

    /// Preparation fraction in basis points (1/100 of a percent), rounded —
    /// the unit the telemetry histogram `recovery.prep_bp` uses, chosen
    /// because log2 buckets around 9 800–10 000 are fine-grained enough to
    /// resolve the ">98 %" threshold while staying integral.
    pub fn preparation_bp(&self) -> u64 {
        (self.preparation_fraction() * 10_000.0).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preparation_dominates_with_default_model() {
        let c = CostModel::default();
        // A typical activation: 1000-kernel library, 64 KiB table, 4 params,
        // 12-instruction kernel.
        let t = RecoveryTime {
            diagnose_ms: c.diagnose_ms,
            table_ms: 64.0 * c.table_decode_per_kib_ms,
            load_ms: c.dlopen_base_ms + 1000.0 * c.dlopen_per_kernel_ms + c.dlsym_ms,
            params_ms: 4.0 * c.param_fetch_ms + c.ffi_setup_ms,
            kernel_ms: 12.0 * c.kernel_per_instr_ms,
            patch_ms: c.patch_resume_ms,
        };
        assert!(t.total_ms() > 5.0 && t.total_ms() < 100.0, "tens of ms");
        assert!(t.preparation_fraction() > 0.98, "paper: >98% preparation");
    }

    #[test]
    fn totals_add_up() {
        let t = RecoveryTime {
            diagnose_ms: 1.0,
            table_ms: 2.0,
            load_ms: 3.0,
            params_ms: 4.0,
            kernel_ms: 5.0,
            patch_ms: 6.0,
        };
        assert!((t.total_ms() - 21.0).abs() < 1e-12);
    }

    #[test]
    fn preparation_fraction_arithmetic_is_pinned() {
        // Exact values, not just ">0.98": prep = total − kernel over total.
        let t = RecoveryTime {
            diagnose_ms: 2.0,
            table_ms: 1.0,
            load_ms: 4.0,
            params_ms: 2.0,
            kernel_ms: 1.0,
            patch_ms: 0.0,
        };
        assert!((t.preparation_fraction() - 0.9).abs() < 1e-12);
        assert_eq!(t.preparation_bp(), 9000);
        // Kernel-free activation: all preparation.
        let all_prep = RecoveryTime { kernel_ms: 0.0, ..t };
        assert!((all_prep.preparation_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(all_prep.preparation_bp(), 10_000);
        // Degenerate zero activation must not divide by zero.
        assert_eq!(RecoveryTime::default().preparation_fraction(), 0.0);
        assert_eq!(RecoveryTime::default().preparation_bp(), 0);
    }

    #[test]
    fn phases_cover_every_field_in_order() {
        let t = RecoveryTime {
            diagnose_ms: 1.0,
            table_ms: 2.0,
            load_ms: 3.0,
            params_ms: 4.0,
            kernel_ms: 5.0,
            patch_ms: 6.0,
        };
        let phases = t.phases();
        let names: Vec<&str> = phases.iter().map(|&(n, _)| n).collect();
        assert_eq!(names, ["diagnose", "table", "load", "params", "kernel", "patch"]);
        // The phases partition the total exactly.
        let sum: f64 = phases.iter().map(|&(_, ms)| ms).sum();
        assert!((sum - t.total_ms()).abs() < 1e-12);
    }

    #[test]
    fn default_model_typical_activation_exceeds_98pct_preparation() {
        // The concrete activation shape the campaigns produce: small kernel
        // (tens of instructions), modest table, few params. Pin the *bound*
        // the paper claims with the default constants.
        let c = CostModel::default();
        for (kernel_instrs, params, table_kib) in
            [(5u32, 1u32, 1.0f64), (50, 4, 64.0), (500, 8, 256.0)]
        {
            let t = RecoveryTime {
                diagnose_ms: c.diagnose_ms,
                table_ms: table_kib * c.table_decode_per_kib_ms,
                load_ms: c.dlopen_base_ms + c.dlsym_ms,
                params_ms: params as f64 * c.param_fetch_ms + c.ffi_setup_ms,
                kernel_ms: kernel_instrs as f64 * c.kernel_per_instr_ms,
                patch_ms: c.patch_resume_ms,
            };
            assert!(
                t.preparation_fraction() > 0.98,
                "kernel_instrs={kernel_instrs}: frac={}",
                t.preparation_fraction()
            );
        }
    }
}
