//! Campaign orchestration: golden runs, per-injection classification, and
//! the aggregate report that regenerates the paper's Tables 2–4, Figure 7,
//! Figure 9 and the Appendix tables.

use crate::injector::{
    inject, pick_injection_point, FaultModel, InjectedInto, InjectionPoint,
};
use care::{build_process, CompiledApp};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use safeguard::{run_protected, DeclineKind, ProtectedExit, RecoveryIndex, Safeguard};
use simx::{ModuleId, Process, Profile, RunExit, TrapKind};
use std::sync::Arc;
use workloads::Workload;

/// Hardware-trap symptom classes of Table 3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Signal {
    /// Invalid memory reference.
    Segv,
    /// Misaligned access.
    Bus,
    /// Failed assertion / abort.
    Abort,
    /// Anything else (SIGFPE, ...).
    Other,
}

/// Injection outcome classes of Table 2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// No observable effect: outputs bit-identical to the golden run.
    Benign,
    /// The process died on a hardware trap.
    SoftFailure(Signal),
    /// Completed but with corrupted outputs.
    Sdc,
    /// No progress within the instruction budget.
    Hang,
}

/// CARE's verdict on one SIGSEGV-producing injection (Figure 7 / 9 data).
#[derive(Clone, Copy, Debug)]
pub struct CareResult {
    /// True when the protected run completed with bit-clean outputs.
    pub covered: bool,
    /// Successful Safeguard activations.
    pub recoveries: u64,
    /// Total modelled recovery time.
    pub recovery_ms: f64,
    /// Decline reason kind when not covered.
    pub decline: Option<DeclineKind>,
}

/// Everything recorded about one injection.
#[derive(Clone, Debug)]
pub struct InjectionRecord {
    /// Where and when the fault was injected.
    pub point: InjectionPoint,
    /// What the injector corrupted.
    pub target: InjectedInto,
    /// Unprotected-outcome classification.
    pub outcome: Outcome,
    /// Manifestation latency in dynamic instructions (soft failures only).
    pub latency: Option<u64>,
    /// Dynamic instructions simulated on behalf of this injection
    /// (unprotected run, plus the protected suffix for CARE evaluations).
    pub sim_steps: u64,
    /// CARE evaluation (SIGSEGV injections when enabled).
    pub care: Option<CareResult>,
}

/// Campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Number of injections (one per run, as in the paper).
    pub injections: usize,
    /// Single- or double-bit-flip model.
    pub model: FaultModel,
    /// RNG seed (campaigns are fully reproducible).
    pub seed: u64,
    /// Re-run SIGSEGV injections under Safeguard to measure coverage.
    pub evaluate_care: bool,
    /// Restrict injections to the executable module (§5 methodology);
    /// `false` injects anywhere (§2 methodology).
    pub app_only: bool,
    /// Hang threshold: `fuel = golden_steps × hang_factor`.
    pub hang_factor: u64,
    /// Bound on Safeguard activations per run.
    pub max_recoveries: u64,
    /// Ablation: Safeguard patches the base register first.
    pub patch_base_first: bool,
    /// Ablation: disable the §5.2 address-equality guard.
    pub skip_equality_guard: bool,
    /// Retain every raw [`InjectionRecord`] in the report. Off by default:
    /// large campaigns only need the aggregates, and the records dominate
    /// the report's memory.
    pub keep_records: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            injections: 1000,
            model: FaultModel::SingleBit,
            seed: 0xCA2E,
            evaluate_care: false,
            app_only: false,
            hang_factor: 20,
            max_recoveries: 64,
            patch_base_first: false,
            skip_equality_guard: false,
            keep_records: false,
        }
    }
}

/// A prepared campaign: compiled modules + golden data + the shared
/// per-injection machinery (a pristine started process template and the
/// recovery index), both built exactly once.
pub struct Campaign {
    exe: CompiledApp,
    libs: Vec<CompiledApp>,
    outputs: Vec<(String, u64)>,
    /// Golden output snapshots.
    golden_outputs: Vec<Vec<u8>>,
    /// Golden dynamic instruction count.
    pub golden_steps: u64,
    /// Execution-count profile from the golden run.
    pub profile: Profile,
    /// A started-but-not-run process; every injection clones it (Arc-shared
    /// image, copy-on-write memory) instead of re-loading the modules.
    template: Process,
    /// Recovery artefacts, encoded and keyed once; shared read-only across
    /// the campaign's workers.
    recovery: Arc<RecoveryIndex>,
}

impl Campaign {
    /// Compile-independent preparation: run the workload once fault-free
    /// (with profiling), snapshot its outputs, and set up the shared
    /// injection machinery.
    pub fn prepare(workload: &Workload, exe: CompiledApp, libs: Vec<CompiledApp>) -> Campaign {
        let mut p = build_process(&exe, &libs);
        p.enable_profile();
        p.start(workload.entry, &workload.args);
        match p.run() {
            RunExit::Done(_) => {}
            other => panic!("golden run of {} failed: {other:?}", workload.name),
        }
        let golden_outputs = workload
            .outputs
            .iter()
            .map(|(name, len)| {
                p.snapshot_global(name, *len)
                    .unwrap_or_else(|| panic!("output global {name} missing"))
            })
            .collect();
        let mut template = build_process(&exe, &libs);
        template.start(workload.entry, &workload.args);
        let mut recovery = RecoveryIndex::new();
        recovery.add(ModuleId(0), &exe.armor);
        for (i, lib) in libs.iter().enumerate() {
            recovery.add(ModuleId(i as u32 + 1), &lib.armor);
        }
        Campaign {
            exe,
            libs,
            outputs: workload.outputs.clone(),
            golden_outputs,
            golden_steps: p.steps,
            profile: p.profile.take().expect("profile enabled"),
            template,
            recovery: Arc::new(recovery),
        }
    }

    fn outputs_clean(&self, p: &Process) -> bool {
        self.outputs
            .iter()
            .zip(&self.golden_outputs)
            .all(|((name, len), golden)| {
                p.snapshot_global(name, *len)
                    .map(|bytes| &bytes == golden)
                    .unwrap_or(false)
            })
    }

    /// Run one injection (deterministic in `(cfg.seed, index)`).
    pub fn run_one(&self, cfg: &CampaignConfig, index: usize) -> Option<InjectionRecord> {
        let modules: Option<Vec<ModuleId>> = cfg.app_only.then(|| vec![ModuleId(0)]);
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (index as u64).wrapping_mul(0x9e37));
        // The paper's fault model corrupts *destination operands* (a
        // register or memory cell); control transfers have neither, so they
        // are not injection targets.
        let mods: Vec<&simx::MachineModule> = std::iter::once(self.exe.machine.as_ref())
            .chain(self.libs.iter().map(|l| l.machine.as_ref()))
            .collect();
        let eligible = |m: usize, f: usize, i: usize| -> bool {
            mods.get(m)
                .and_then(|mm| mm.funcs.get(f))
                .and_then(|mf| mf.instrs.get(i))
                .map(|inst| !inst.is_control())
                .unwrap_or(false)
        };
        let point =
            pick_injection_point(&self.profile, &mut rng, modules.as_deref(), &eligible)?;

        // --- unprotected run: raw manifestation (§2 methodology) ---------
        let mut p = self.template.clone();
        p.fuel = self.golden_steps.saturating_mul(cfg.hang_factor).max(1_000_000);
        p.break_at = Some((point.module, point.func, point.inst, point.nth));
        match p.run() {
            RunExit::BreakHit => {}
            // The breakpoint is derived from the profile, so this is
            // unreachable for deterministic programs; be safe anyway.
            _ => return None,
        }
        // Snapshot-fork the paused process *before* corrupting it: the
        // protected CARE evaluation resumes from this fork instead of
        // re-simulating the whole prefix.
        let paused = cfg.evaluate_care.then(|| p.clone());
        let mut flip_rng = rng.clone();
        let target = inject(&mut p, point, cfg.model, &mut flip_rng);
        if target == InjectedInto::Skipped {
            return None;
        }
        let steps_at_injection = p.steps;
        let (outcome, latency) = match p.run() {
            RunExit::Done(_) => {
                if self.outputs_clean(&p) {
                    (Outcome::Benign, None)
                } else {
                    (Outcome::Sdc, None)
                }
            }
            RunExit::Trapped(t) => match t.kind {
                TrapKind::OutOfFuel => (Outcome::Hang, None),
                kind => (
                    Outcome::SoftFailure(signal_of(kind)),
                    Some(p.steps - steps_at_injection),
                ),
            },
            RunExit::BreakHit => unreachable!("breakpoint already consumed"),
        };
        let mut sim_steps = p.steps;

        // --- protected run for SIGSEGV injections (§5 methodology):
        // resume the pre-injection fork, repeat the same flip, and let
        // Safeguard handle the fallout -------------------------------------
        let care = if outcome == Outcome::SoftFailure(Signal::Segv) {
            paused.map(|mut p| {
                let mut flip_rng = rng.clone();
                inject(&mut p, point, cfg.model, &mut flip_rng);
                let mut sg = Safeguard::with_index(Arc::clone(&self.recovery));
                sg.patch_base_first = cfg.patch_base_first;
                sg.skip_equality_guard = cfg.skip_equality_guard;
                let care = match run_protected(&mut p, &mut sg, cfg.max_recoveries) {
                    ProtectedExit::Completed { recoveries, recovery_ms, .. } => {
                        let clean = self.outputs_clean(&p);
                        CareResult {
                            covered: clean && recoveries > 0,
                            recoveries,
                            recovery_ms,
                            decline: None,
                        }
                    }
                    ProtectedExit::Crashed { reason, recoveries, .. } => CareResult {
                        covered: false,
                        recoveries,
                        recovery_ms: 0.0,
                        decline: Some(reason.kind()),
                    },
                    ProtectedExit::Hung => CareResult {
                        covered: false,
                        recoveries: 0,
                        recovery_ms: 0.0,
                        decline: Some(DeclineKind::Hang),
                    },
                };
                sim_steps += p.steps - steps_at_injection;
                care
            })
        } else {
            None
        };

        Some(InjectionRecord { point, target, outcome, latency, sim_steps, care })
    }

    /// Run the full campaign (rayon-parallel across injections).
    pub fn run(&self, cfg: &CampaignConfig) -> CampaignReport {
        let records: Vec<InjectionRecord> = (0..cfg.injections)
            .into_par_iter()
            .filter_map(|i| self.run_one(cfg, i))
            .collect();
        let mut report = CampaignReport::from_records(records);
        if !cfg.keep_records {
            report.records = Vec::new();
        }
        report
    }
}

fn signal_of(kind: TrapKind) -> Signal {
    match kind {
        TrapKind::Segv(_) => Signal::Segv,
        TrapKind::Bus(_) => Signal::Bus,
        TrapKind::Abort => Signal::Abort,
        TrapKind::Fpe => Signal::Other,
        TrapKind::OutOfFuel => Signal::Other,
    }
}

/// Aggregated campaign results — the raw material for Tables 2, 3, 4, 10,
/// 11 and Figures 7, 9, 12.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Table 2 row.
    pub benign: usize,
    /// Table 2 row.
    pub soft_failure: usize,
    /// Table 2 row.
    pub sdc: usize,
    /// Table 2 row.
    pub hang: usize,
    /// Table 3 row: `[SIGSEGV, SIGBUS, SIGABRT, Other]`.
    pub signals: [usize; 4],
    /// Table 4 row: latency buckets `≤10, 11–50, 51–400, >400`.
    pub latency_buckets: [usize; 4],
    /// Figure 7: SIGSEGV injections evaluated under CARE.
    pub care_evaluated: usize,
    /// Figure 7: of those, recovered with clean output.
    pub care_covered: usize,
    /// Runs that completed after repair but with corrupted output: the
    /// injected fault hit a value used both as an address (repaired
    /// exactly) and as data (corrupted before CARE was ever involved).
    /// These count as *not covered*; they are not repair-introduced SDCs.
    pub care_survived_with_sdc: usize,
    /// Figure 9: modelled recovery times (ms) of covered runs.
    pub recovery_times_ms: Vec<f64>,
    /// Safeguard activations across covered runs.
    pub total_recoveries: u64,
    /// Decline-reason histogram of uncovered runs.
    pub declines: std::collections::HashMap<DeclineKind, usize>,
    /// Total dynamic instructions simulated across all injections (the
    /// denominator of simulated-instructions/sec throughput).
    pub simulated_steps: u64,
    /// Raw records; populated only when [`CampaignConfig::keep_records`]
    /// is set.
    pub records: Vec<InjectionRecord>,
}

impl CampaignReport {
    /// Build the aggregate view from raw records.
    pub fn from_records(records: Vec<InjectionRecord>) -> CampaignReport {
        let mut r = CampaignReport::default();
        for rec in &records {
            match rec.outcome {
                Outcome::Benign => r.benign += 1,
                Outcome::Sdc => r.sdc += 1,
                Outcome::Hang => r.hang += 1,
                Outcome::SoftFailure(sig) => {
                    r.soft_failure += 1;
                    let si = match sig {
                        Signal::Segv => 0,
                        Signal::Bus => 1,
                        Signal::Abort => 2,
                        Signal::Other => 3,
                    };
                    r.signals[si] += 1;
                    if let Some(lat) = rec.latency {
                        let bi = match lat {
                            0..=10 => 0,
                            11..=50 => 1,
                            51..=400 => 2,
                            _ => 3,
                        };
                        r.latency_buckets[bi] += 1;
                    }
                }
            }
            r.simulated_steps += rec.sim_steps;
            if let Some(c) = &rec.care {
                r.care_evaluated += 1;
                if c.covered {
                    r.care_covered += 1;
                    r.recovery_times_ms.push(c.recovery_ms);
                    r.total_recoveries += c.recoveries;
                } else if let Some(d) = c.decline {
                    *r.declines.entry(d).or_default() += 1;
                } else if c.recoveries > 0 {
                    r.care_survived_with_sdc += 1;
                }
            }
        }
        r.records = records;
        r
    }

    /// Total classified injections.
    pub fn total(&self) -> usize {
        self.benign + self.soft_failure + self.sdc + self.hang
    }

    /// Figure 7's coverage metric.
    pub fn coverage(&self) -> f64 {
        if self.care_evaluated == 0 {
            0.0
        } else {
            self.care_covered as f64 / self.care_evaluated as f64
        }
    }

    /// Mean modelled recovery time of covered runs (Figure 9).
    pub fn mean_recovery_ms(&self) -> f64 {
        if self.recovery_times_ms.is_empty() {
            0.0
        } else {
            self.recovery_times_ms.iter().sum::<f64>() / self.recovery_times_ms.len() as f64
        }
    }

    /// Fraction of soft failures manifesting within `n` dynamic
    /// instructions (Table 4 analysis).
    pub fn latency_fraction_within(&self, n: u64) -> f64 {
        let total: usize = self.latency_buckets.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let within: usize = match n {
            0..=10 => self.latency_buckets[0],
            11..=50 => self.latency_buckets[..2].iter().sum(),
            51..=400 => self.latency_buckets[..3].iter().sum(),
            _ => total,
        };
        within as f64 / total as f64
    }
}
