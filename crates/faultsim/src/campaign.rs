//! Campaign orchestration: golden runs, per-injection classification, and
//! the aggregate report that regenerates the paper's Tables 2–4, Figure 7,
//! Figure 9 and the Appendix tables.
//!
//! Two schedulers drive a campaign (selected by [`CampaignConfig::scheduler`],
//! observationally identical per injection):
//!
//! * **Snapshot trellis** (default): all `N` injection points are sampled up
//!   front and partitioned into `K` disjoint, step-ordered windows along the
//!   golden run's checkpoint trail; `K` instrumented *cursor* processes then
//!   advance through their windows concurrently (each fast-replays the
//!   uninstrumented prefix to its window boundary first), CoW-forking a
//!   paused snapshot each time a pending `(I, n)` fires. Workers then run
//!   only the suffix (inject → classify → CARE-protected fork) from their
//!   snapshot, in parallel on the same pool. Campaign-wide simulated
//!   instructions drop from ~`N·L` to ~`L + Σ suffixes`, and `K > 1` removes
//!   the serial-cursor Amdahl bottleneck (`K = 1` reproduces the original
//!   single cursor exactly).
//! * **Per-injection**: every injection clones the template and re-simulates
//!   its own prefix up to the breakpoint (the pre-trellis engine, kept as the
//!   equivalence baseline and for single-injection use via [`Campaign::run_one`]).

use crate::injector::{
    inject, pick_injection_point, FaultModel, InjectedInto, InjectionPoint,
};
use care::{build_process, CompiledApp};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use safeguard::{
    run_protected_engine_with_hooks, DeclineKind, ProtectedExit, RecoveryIndex, Safeguard,
};
use simx::{
    advance_to_step, BreakSet, CompiledEngine, EngineKind, ExecutionEngine, InterpEngine,
    ModuleId, Process, Profile, RunExit, TrapKind,
};
use tinyir::FuncId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use telemetry::{timed, Event, Hooks, NoTelemetry};
use workloads::Workload;

/// Hardware-trap symptom classes of Table 3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Signal {
    /// Invalid memory reference.
    Segv,
    /// Misaligned access.
    Bus,
    /// Failed assertion / abort.
    Abort,
    /// Anything else (SIGFPE, ...).
    Other,
}

/// Injection outcome classes of Table 2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// No observable effect: outputs bit-identical to the golden run.
    Benign,
    /// The process died on a hardware trap.
    SoftFailure(Signal),
    /// Completed but with corrupted outputs.
    Sdc,
    /// No progress within the instruction budget.
    Hang,
}

impl Outcome {
    /// Static label for event streams (`job` events carry this).
    pub fn name(&self) -> &'static str {
        match self {
            Outcome::Benign => "benign",
            Outcome::Sdc => "sdc",
            Outcome::Hang => "hang",
            Outcome::SoftFailure(Signal::Segv) => "segv",
            Outcome::SoftFailure(Signal::Bus) => "bus",
            Outcome::SoftFailure(Signal::Abort) => "abort",
            Outcome::SoftFailure(Signal::Other) => "signal_other",
        }
    }
}

/// CARE's verdict on one SIGSEGV-producing injection (Figure 7 / 9 data).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CareResult {
    /// True when the protected run completed with bit-clean outputs.
    pub covered: bool,
    /// Successful Safeguard activations.
    pub recoveries: u64,
    /// Total modelled recovery time.
    pub recovery_ms: f64,
    /// Decline reason kind when not covered.
    pub decline: Option<DeclineKind>,
}

/// Per-stage dynamic-instruction accounting for one injection. The three
/// stages partition the work the injection is *semantically responsible
/// for*; whether the prefix was actually re-simulated (per-injection
/// scheduler) or shared via a trellis snapshot is a property of the
/// campaign, recorded in [`CampaignReport::steps_prefix`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StepSplit {
    /// Instructions from process start to the injection point.
    pub prefix: u64,
    /// Instructions from the injection to the unprotected outcome.
    pub suffix: u64,
    /// Instructions of the CARE-protected re-run (its suffix only; the
    /// protected run resumes from the pre-injection fork).
    pub care: u64,
}

impl StepSplit {
    /// Total attributed instructions. Saturating: splits can come back
    /// from a persisted record log, where nothing bounds the components'
    /// sum (mirrors `telemetry::Histogram`'s saturating `sum`).
    pub fn total(&self) -> u64 {
        self.prefix.saturating_add(self.suffix).saturating_add(self.care)
    }
}

/// Everything recorded about one injection.
#[derive(Clone, PartialEq, Debug)]
pub struct InjectionRecord {
    /// Where and when the fault was injected.
    pub point: InjectionPoint,
    /// What the injector corrupted.
    pub target: InjectedInto,
    /// Unprotected-outcome classification.
    pub outcome: Outcome,
    /// Manifestation latency in dynamic instructions (soft failures only).
    pub latency: Option<u64>,
    /// Dynamic instructions attributed to this injection (prefix +
    /// unprotected suffix, plus the protected suffix for CARE evaluations).
    pub sim_steps: u64,
    /// The prefix/suffix/CARE breakdown of `sim_steps`.
    pub split: StepSplit,
    /// CARE evaluation (SIGSEGV injections when enabled).
    pub care: Option<CareResult>,
}

/// Which engine drives [`Campaign::run`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Scheduler {
    /// One shared instrumented prefix pass; CoW-forked suffixes (default).
    #[default]
    Trellis,
    /// Every injection re-simulates its own prefix (the pre-trellis
    /// engine; bit-identical records, ~2x the simulated instructions).
    PerInjection,
}

impl Scheduler {
    /// Stable CLI/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            Scheduler::Trellis => "trellis",
            Scheduler::PerInjection => "per-injection",
        }
    }
}

impl std::str::FromStr for Scheduler {
    type Err = String;
    fn from_str(s: &str) -> Result<Scheduler, String> {
        match s {
            "trellis" => Ok(Scheduler::Trellis),
            "per-injection" => Ok(Scheduler::PerInjection),
            other => Err(format!("unknown scheduler {other:?} (trellis|per-injection)")),
        }
    }
}

/// Observer of classified records as they are produced, keyed by injection
/// index — the hook a persistent result store uses to append records
/// incrementally (so a killed campaign can resume from whatever reached
/// the log). Called from pool workers concurrently, in completion order,
/// exactly once per produced record; implementations must be internally
/// synchronized. A sink never influences the records: a campaign run with
/// any sink is bit-identical to one run with [`NoSink`].
pub trait RecordSink: Sync {
    /// Observe the record produced for injection `index`.
    fn emit(&self, index: usize, record: &InjectionRecord);
}

/// The do-nothing sink used by the non-persistent entry points.
pub struct NoSink;

impl RecordSink for NoSink {
    fn emit(&self, _index: usize, _record: &InjectionRecord) {}
}

/// Cooperative cancellation plus coarse progress for service-shaped runs.
///
/// A campaign driven through [`Campaign::run_job`] polls the flag between
/// trellis cursor firings and before every suffix/CARE job (one relaxed
/// atomic load — far below the cost of either), so a cancelled job stops
/// burning pool time within one injection's worth of work. The `classified`
/// counter ticks once per produced record, giving observers (a campaign
/// server streaming progress, a Ctrl-C handler in a local run) a live
/// done-so-far view without touching the record pipeline.
///
/// A `JobControl` that is never cancelled is an observational no-op: the
/// records are bit-identical to [`Campaign::run`].
#[derive(Debug, Default)]
pub struct JobControl {
    cancelled: AtomicBool,
    classified: AtomicU64,
}

impl JobControl {
    /// A fresh, uncancelled control block.
    pub fn new() -> JobControl {
        JobControl::default()
    }

    /// Request cancellation; the campaign stops at its next check.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has [`cancel`](Self::cancel) been called?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Records produced so far (monotone during a run).
    pub fn classified(&self) -> u64 {
        self.classified.load(Ordering::Relaxed)
    }

    fn note_classified(&self) {
        self.classified.fetch_add(1, Ordering::Relaxed);
    }
}

/// Campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Number of injections (one per run, as in the paper).
    pub injections: usize,
    /// Single- or double-bit-flip model.
    pub model: FaultModel,
    /// RNG seed (campaigns are fully reproducible).
    pub seed: u64,
    /// Re-run SIGSEGV injections under Safeguard to measure coverage.
    pub evaluate_care: bool,
    /// Restrict injections to the executable module (§5 methodology);
    /// `false` injects anywhere (§2 methodology).
    pub app_only: bool,
    /// Hang threshold: `fuel = golden_steps × hang_factor`.
    pub hang_factor: u64,
    /// Bound on Safeguard activations per run.
    pub max_recoveries: u64,
    /// Ablation: Safeguard patches the base register first.
    pub patch_base_first: bool,
    /// Ablation: disable the §5.2 address-equality guard.
    pub skip_equality_guard: bool,
    /// Retain every raw [`InjectionRecord`] in the report. Off by default:
    /// large campaigns only need the aggregates, and the records dominate
    /// the report's memory.
    pub keep_records: bool,
    /// Which campaign engine to use (records are identical either way).
    pub scheduler: Scheduler,
    /// Execution backend for the hot suffix/CARE runs (records are
    /// bit-identical on either; `Compiled` is the direct-threaded
    /// translator behind [`simx::ExecutionEngine`]).
    pub engine: EngineKind,
    /// Trellis cursor shard count: the pre-sampled injection points are
    /// split into this many disjoint step-ordered windows, each walked by
    /// its own instrumented cursor, concurrently. `None` (default) uses
    /// the pool width; records are bit-identical for every value.
    pub cursor_shards: Option<usize>,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            injections: 1000,
            model: FaultModel::SingleBit,
            seed: 0xCA2E,
            evaluate_care: false,
            app_only: false,
            hang_factor: 20,
            max_recoveries: 64,
            patch_base_first: false,
            skip_equality_guard: false,
            keep_records: false,
            scheduler: Scheduler::Trellis,
            engine: EngineKind::Interp,
            cursor_shards: None,
        }
    }
}

/// A step-indexed snapshot of the golden run's execution-count profile,
/// captured during [`Campaign::prepare`]: `counts` holds the per-static-
/// instruction execution totals of the first `step` dynamic instructions.
/// The trail is what lets a cursor shard (a) fast-replay to a boundary
/// with no instrumentation and (b) rebase its points' `nth` ordinals to
/// breakpoint ordinals counted from that boundary.
struct ProfileCheckpoint {
    step: u64,
    counts: Profile,
}

/// One planned window of the parallel cursor pass: the points firing in
/// `(start_step, next boundary]`, walked by one instrumented cursor.
struct CursorShard {
    /// Golden-run step of this shard's start boundary (0 for shard 0).
    start_step: u64,
    /// Index into [`Campaign::checkpoints`] holding the boundary's profile
    /// counts (`None` for shard 0: all counts zero).
    checkpoint: Option<usize>,
    /// The distinct injection points firing inside this window.
    points: Vec<InjectionPoint>,
}

/// What one cursor shard produced.
struct ShardResult {
    /// Paused pre-injection snapshots, in firing (step) order.
    snapshots: Vec<(InjectionPoint, Process)>,
    /// Steps this cursor executed: boundary replay + window walk.
    steps: u64,
}

/// Executions of `point`'s static instruction recorded in `profile`.
fn count_at(profile: &Profile, module: ModuleId, func: FuncId, inst: usize) -> u64 {
    profile
        .get(module.0 as usize)
        .and_then(|fs| fs.get(func.0 as usize))
        .and_then(|is| is.get(inst))
        .copied()
        .unwrap_or(0)
}

/// A prepared campaign: compiled modules + golden data + the shared
/// per-injection machinery (a pristine started process template and the
/// recovery index), both built exactly once.
pub struct Campaign {
    exe: CompiledApp,
    libs: Vec<CompiledApp>,
    outputs: Vec<(String, u64)>,
    /// Golden output snapshots.
    golden_outputs: Vec<Vec<u8>>,
    /// Golden dynamic instruction count.
    pub golden_steps: u64,
    /// Execution-count profile from the golden run.
    pub profile: Profile,
    /// Evenly spaced mid-run profile checkpoints from the golden run, the
    /// shard-boundary candidates for the parallel cursor pass. Empty for
    /// programs shorter than the checkpoint quantum (those degrade to a
    /// single cursor shard).
    checkpoints: Vec<ProfileCheckpoint>,
    /// A started-but-not-run process; every injection clones it (Arc-shared
    /// image, copy-on-write memory) instead of re-loading the modules.
    template: Process,
    /// Recovery artefacts, encoded and keyed once; shared read-only across
    /// the campaign's workers.
    recovery: Arc<RecoveryIndex>,
}

impl Campaign {
    /// Compile-independent preparation: run the workload once fault-free
    /// (with profiling), snapshot its outputs, and set up the shared
    /// injection machinery.
    pub fn prepare(workload: &Workload, exe: CompiledApp, libs: Vec<CompiledApp>) -> Campaign {
        let mut p = build_process(&exe, &libs);
        p.enable_profile();
        p.start(workload.entry, &workload.args);
        // Drive the golden run in fixed-step slices, snapshotting the
        // profile at each pause: the checkpoint trail the parallel cursor
        // pass cuts its shard boundaries from. The trail stays bounded for
        // any program length by halving (keep every second checkpoint,
        // double the quantum) whenever it fills.
        const MAX_CHECKPOINTS: usize = 96;
        let mut checkpoints: Vec<ProfileCheckpoint> = Vec::new();
        let mut quantum: u64 = 1 << 10;
        let exit = loop {
            p.fuel = quantum;
            match p.run() {
                RunExit::Trapped(t) if t.kind == TrapKind::OutOfFuel => {
                    // The pause is bookkeeping, not an observed trap.
                    p.trap_count -= 1;
                    checkpoints.push(ProfileCheckpoint {
                        step: p.steps,
                        counts: p.profile.clone().expect("profile enabled"),
                    });
                    if checkpoints.len() == MAX_CHECKPOINTS {
                        let mut nth = 0;
                        checkpoints.retain(|_| {
                            nth += 1;
                            nth % 2 == 0
                        });
                        quantum *= 2;
                    }
                }
                other => break other,
            }
        };
        match exit {
            RunExit::Done(_) => {}
            other => panic!("golden run of {} failed: {other:?}", workload.name),
        }
        let golden_outputs = workload
            .outputs
            .iter()
            .map(|(name, len)| {
                p.snapshot_global(name, *len)
                    .unwrap_or_else(|| panic!("output global {name} missing"))
            })
            .collect();
        let mut template = build_process(&exe, &libs);
        template.start(workload.entry, &workload.args);
        let mut recovery = RecoveryIndex::new();
        recovery.add(ModuleId(0), &exe.armor);
        for (i, lib) in libs.iter().enumerate() {
            recovery.add(ModuleId(i as u32 + 1), &lib.armor);
        }
        Campaign {
            exe,
            libs,
            outputs: workload.outputs.clone(),
            golden_outputs,
            golden_steps: p.steps,
            profile: p.profile.take().expect("profile enabled"),
            checkpoints,
            template,
            recovery: Arc::new(recovery),
        }
    }

    fn outputs_clean(&self, p: &Process) -> bool {
        self.outputs
            .iter()
            .zip(&self.golden_outputs)
            .all(|((name, len), golden)| {
                p.snapshot_global(name, *len)
                    .map(|bytes| &bytes == golden)
                    .unwrap_or(false)
            })
    }

    /// The campaign-wide instruction budget: a run (prefix *and* suffix
    /// together) exceeding it is classified as a hang.
    fn fuel_budget(&self, cfg: &CampaignConfig) -> u64 {
        self.golden_steps.saturating_mul(cfg.hang_factor).max(1_000_000)
    }

    /// Sample injection `index`'s `(I, n)` point, deterministic in
    /// `(cfg.seed, index)`. Returns the point plus the RNG in the exact
    /// post-sampling state the bit-flip draws continue from, so pre-sampling
    /// (trellis) and inline sampling (per-injection) yield identical records.
    fn sample_point(
        &self,
        cfg: &CampaignConfig,
        index: usize,
    ) -> Option<(InjectionPoint, SmallRng)> {
        let modules: Option<Vec<ModuleId>> = cfg.app_only.then(|| vec![ModuleId(0)]);
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (index as u64).wrapping_mul(0x9e37));
        // The paper's fault model corrupts *destination operands* (a
        // register or memory cell); control transfers have neither, so they
        // are not injection targets.
        let mods: Vec<&simx::MachineModule> = std::iter::once(self.exe.machine.as_ref())
            .chain(self.libs.iter().map(|l| l.machine.as_ref()))
            .collect();
        let eligible = |m: usize, f: usize, i: usize| -> bool {
            mods.get(m)
                .and_then(|mm| mm.funcs.get(f))
                .and_then(|mf| mf.instrs.get(i))
                .map(|inst| !inst.is_control())
                .unwrap_or(false)
        };
        let point =
            pick_injection_point(&self.profile, &mut rng, modules.as_deref(), &eligible)?;
        Some((point, rng))
    }

    /// Inject into a process paused right after `point`'s `nth` execution
    /// and classify the fallout. `p` must carry the remaining fuel of the
    /// campaign budget (a fork inherits it; a fresh full budget would let
    /// late injection points overshoot the hang bound by nearly 2x) and the
    /// RNG must be in the post-[`Campaign::sample_point`] state.
    ///
    /// With hooks enabled this is also the per-*job* instrumentation site
    /// (both schedulers funnel through it): a wall-clock span per job
    /// (`job.wall_ns`, accumulated into the `worker.busy_ns` counter —
    /// whose per-shard subtotals are the per-worker utilization view),
    /// simulated-step spans for the suffix and CARE stages, TLB counter
    /// deltas of the processes this job ran, and one `job` event whose
    /// `t_ns` stamp traces the queue drain. Hooks never influence the
    /// record: a telemetry-enabled campaign is bit-identical.
    fn run_suffix<H: Hooks>(
        &self,
        cfg: &CampaignConfig,
        point: InjectionPoint,
        rng: &SmallRng,
        mut p: Process,
        engine: &dyn ExecutionEngine,
        hooks: &H,
    ) -> Option<InjectionRecord> {
        let t0 = H::ENABLED.then(std::time::Instant::now);
        let base_stats = p.mem.stats;
        let prefix_steps = p.steps;
        // Snapshot-fork the paused process *before* corrupting it: the
        // protected CARE evaluation resumes from this fork instead of
        // re-simulating the whole prefix.
        let paused = cfg.evaluate_care.then(|| p.clone());
        let mut flip_rng = rng.clone();
        let target = inject(&mut p, point, cfg.model, &mut flip_rng);
        if target == InjectedInto::Skipped {
            if H::ENABLED {
                hooks.add("campaign.skipped", 1);
            }
            return None;
        }
        let (outcome, latency) = match engine.run(&mut p) {
            RunExit::Done(_) => {
                if self.outputs_clean(&p) {
                    (Outcome::Benign, None)
                } else {
                    (Outcome::Sdc, None)
                }
            }
            RunExit::Trapped(t) => match t.kind {
                TrapKind::OutOfFuel => (Outcome::Hang, None),
                kind => (
                    Outcome::SoftFailure(signal_of(kind)),
                    Some(p.steps - prefix_steps),
                ),
            },
            RunExit::BreakHit => unreachable!("breakpoint already consumed"),
        };
        let suffix_steps = p.steps - prefix_steps;
        let mut tlb = p.mem.stats.since(&base_stats);

        // --- protected run for SIGSEGV injections (§5 methodology):
        // resume the pre-injection fork, repeat the same flip, and let
        // Safeguard handle the fallout -------------------------------------
        let mut care_steps = 0u64;
        let care = if outcome == Outcome::SoftFailure(Signal::Segv) {
            paused.map(|mut p| {
                let mut flip_rng = rng.clone();
                inject(&mut p, point, cfg.model, &mut flip_rng);
                let mut sg = Safeguard::with_index(Arc::clone(&self.recovery));
                sg.patch_base_first = cfg.patch_base_first;
                sg.skip_equality_guard = cfg.skip_equality_guard;
                let care = match run_protected_engine_with_hooks(
                    engine,
                    &mut p,
                    &mut sg,
                    cfg.max_recoveries,
                    hooks,
                ) {
                    ProtectedExit::Completed { recoveries, recovery_ms, .. } => {
                        let clean = self.outputs_clean(&p);
                        CareResult {
                            covered: clean && recoveries > 0,
                            recoveries,
                            recovery_ms,
                            decline: None,
                        }
                    }
                    ProtectedExit::Crashed { reason, recoveries, .. } => CareResult {
                        covered: false,
                        recoveries,
                        recovery_ms: 0.0,
                        decline: Some(reason.kind()),
                    },
                    ProtectedExit::Hung => CareResult {
                        covered: false,
                        recoveries: 0,
                        recovery_ms: 0.0,
                        decline: Some(DeclineKind::Hang),
                    },
                };
                care_steps = p.steps - prefix_steps;
                if H::ENABLED {
                    // The fork's counters start from the paused clone
                    // (which inherited `base_stats`'s values at the fork).
                    tlb.merge(&p.mem.stats.since(&base_stats));
                }
                care
            })
        } else {
            None
        };

        if H::ENABLED {
            let wall_ns = t0.expect("enabled").elapsed().as_nanos() as u64;
            hooks.add("worker.busy_ns", wall_ns);
            hooks.record("job.wall_ns", wall_ns);
            hooks.record("job.suffix_steps", suffix_steps);
            if care.is_some() {
                hooks.record("job.care_steps", care_steps);
            }
            hooks.add("tlb.loads", tlb.loads);
            hooks.add("tlb.stores", tlb.stores);
            hooks.add("tlb.read_misses", tlb.read_tlb_misses);
            hooks.add("tlb.write_misses", tlb.write_tlb_misses);
            hooks.emit(|| {
                Event::new("job")
                    .field("outcome", outcome.name())
                    .field("func", point.func.0 as u64)
                    .field("inst", point.inst)
                    .field("nth", point.nth)
                    .field("suffix_steps", suffix_steps)
                    .field("care_steps", care_steps)
                    .field("wall_ns", wall_ns)
            });
        }

        let split = StepSplit { prefix: prefix_steps, suffix: suffix_steps, care: care_steps };
        Some(InjectionRecord {
            point,
            target,
            outcome,
            latency,
            sim_steps: split.total(),
            split,
            care,
        })
    }

    /// Run one injection end-to-end, re-simulating its prefix
    /// (deterministic in `(cfg.seed, index)`).
    pub fn run_one(&self, cfg: &CampaignConfig, index: usize) -> Option<InjectionRecord> {
        let compiled = self.compiled_engine(cfg);
        self.run_one_with_hooks(cfg, index, engine_ref(&compiled), &NoTelemetry)
    }

    /// Construct the configured compiled engine for this campaign's image
    /// (`None` → interpreter). Translation hits the process-wide cache, so
    /// repeated campaigns over the same module pay it once.
    fn compiled_engine(&self, cfg: &CampaignConfig) -> Option<CompiledEngine> {
        (cfg.engine == EngineKind::Compiled)
            .then(|| CompiledEngine::for_image(&self.template.image))
    }

    fn run_one_with_hooks<H: Hooks>(
        &self,
        cfg: &CampaignConfig,
        index: usize,
        engine: &dyn ExecutionEngine,
        hooks: &H,
    ) -> Option<InjectionRecord> {
        let (point, rng) = self.sample_point(cfg, index)?;
        // --- unprotected run: raw manifestation (§2 methodology) ---------
        let mut p = self.template.clone();
        p.fuel = self.fuel_budget(cfg);
        p.break_at = Some((point.module, point.func, point.inst, point.nth));
        match p.run() {
            RunExit::BreakHit => {}
            // The breakpoint is derived from the profile, so this is
            // unreachable for deterministic programs; be safe anyway.
            _ => return None,
        }
        self.run_suffix(cfg, point, &rng, p, engine, hooks)
    }

    /// The per-injection scheduler: rayon-parallel `run_one` calls, each
    /// re-simulating its own prefix.
    fn run_per_injection<H: Hooks>(
        &self,
        cfg: &CampaignConfig,
        indices: &[usize],
        engine: &dyn ExecutionEngine,
        hooks: &H,
        ctl: &JobControl,
        sink: &dyn RecordSink,
    ) -> CampaignReport {
        let indices: Vec<usize> = indices.to_vec();
        let records: Vec<InjectionRecord> = indices
            .into_par_iter()
            .filter_map(|i| {
                if ctl.is_cancelled() {
                    return None;
                }
                let rec = self.run_one_with_hooks(cfg, i, engine, hooks);
                if let Some(r) = &rec {
                    sink.emit(i, r);
                    ctl.note_classified();
                }
                rec
            })
            .collect();
        CampaignReport::from_records(records)
    }

    /// The snapshot-trellis scheduler: sample all points up front, advance
    /// one instrumented cursor through the program, CoW-fork a snapshot at
    /// each distinct firing point, then run only the suffixes in parallel.
    fn run_trellis<H: Hooks>(
        &self,
        cfg: &CampaignConfig,
        indices: &[usize],
        engine: &dyn ExecutionEngine,
        hooks: &H,
        ctl: &JobControl,
        sink: &dyn RecordSink,
    ) -> CampaignReport {
        // Phase 1 — sampling. Same per-index RNG stream as `run_one`, so
        // every downstream bit-flip draw is identical — for any index
        // subset: a residual run samples exactly the points a full run
        // would have sampled at those indexes.
        let samples: Vec<(usize, InjectionPoint, SmallRng)> =
            timed(hooks, "trellis.sample_ns", || {
                indices
                    .iter()
                    .filter_map(|&i| self.sample_point(cfg, i).map(|(p, rng)| (i, p, rng)))
                    .collect()
            });

        // Phase 2 — shard planning: partition the *distinct* points
        // (injection indexes that sampled the same `(I, n)` share one
        // trellis snapshot) into disjoint step-ordered windows along the
        // golden checkpoint trail.
        let shards = self.plan_cursor_shards(cfg, &samples);
        let cursor_shards = shards.iter().filter(|s| !s.points.is_empty()).count();

        // Phase 3 — the cursor pass, one instrumented traversal *per
        // shard*, run concurrently on the pool. Each cursor fast-replays
        // (uninstrumented, so a compiled campaign replays compiled) to its
        // window boundary, arms a BreakSet holding only its own points
        // with ordinals rebased to the boundary's profile counts, and
        // forks a paused snapshot at every firing point, under the
        // campaign fuel budget. Deterministic execution makes every
        // cursor's timeline *the* golden timeline, so the snapshot forked
        // for a point is bit-identical for every shard count — `K = 1`
        // degrades to exactly the original single cursor. A shard's cursor
        // is dropped as soon as its last pending point fires (the window
        // tail past it is never re-simulated), and empty shards never run.
        let shard_results: Vec<ShardResult> = timed(hooks, "trellis.cursor_ns", || {
            let work: Vec<(usize, CursorShard)> = shards
                .into_iter()
                .enumerate()
                .filter(|(_, s)| !s.points.is_empty())
                .collect();
            work.into_par_iter()
                .map(|(k, shard)| self.run_cursor_shard(cfg, k, shard, engine, hooks, ctl))
                .collect()
        });
        let mut snapshots: Vec<Process> = Vec::new();
        let mut snapshot_of: HashMap<InjectionPoint, usize> = HashMap::new();
        let mut cursor_steps = 0u64;
        for res in shard_results {
            cursor_steps += res.steps;
            for (point, snap) in res.snapshots {
                snapshot_of.insert(point, snapshots.len());
                snapshots.push(snap);
            }
        }

        // Phase 4 — suffix scheduling: rayon-parallel over injection
        // indexes (order-preserving, so records match the per-injection
        // scheduler element for element); each worker CoW-forks its
        // snapshot and runs inject → classify → CARE. The *last* consumer
        // of each snapshot takes ownership instead of cloning it — an
        // injection point sampled once (the common case) never pays a
        // fork at all.
        let trellis_snapshots = snapshots.len();
        let mut uses: Vec<usize> = vec![0; snapshots.len()];
        for (_, point, _) in &samples {
            if let Some(&slot) = snapshot_of.get(point) {
                uses[slot] += 1;
            }
        }
        let mut slots: Vec<Option<Process>> = snapshots.into_iter().map(Some).collect();
        let jobs: Vec<(usize, InjectionPoint, SmallRng, Option<Process>)> = samples
            .into_iter()
            .map(|(index, point, rng)| {
                let p = snapshot_of.get(&point).and_then(|&slot| {
                    uses[slot] -= 1;
                    if uses[slot] == 0 {
                        slots[slot].take()
                    } else {
                        slots[slot].clone()
                    }
                });
                (index, point, rng, p)
            })
            .collect();
        let records: Vec<InjectionRecord> = timed(hooks, "trellis.suffixes_ns", || {
            jobs.into_par_iter()
                .filter_map(|(index, point, rng, p)| {
                    if ctl.is_cancelled() {
                        return None;
                    }
                    let rec = self.run_suffix(cfg, point, &rng, p?, engine, hooks);
                    if let Some(r) = &rec {
                        sink.emit(index, r);
                        ctl.note_classified();
                    }
                    rec
                })
                .collect()
        });

        let mut report = CampaignReport::from_records(records);
        // The attributed per-record prefixes were simulated once, by the
        // cursor shards: report what actually executed (replay + window
        // steps summed over the shards that had points).
        report.trellis_snapshots = trellis_snapshots;
        report.cursor_shards = cursor_shards;
        report.steps_prefix = cursor_steps;
        report.simulated_steps = cursor_steps
            .saturating_add(report.steps_suffix)
            .saturating_add(report.steps_care);
        if H::ENABLED {
            hooks.add("trellis.snapshots", trellis_snapshots as u64);
            hooks.add("trellis.cursor_steps", cursor_steps);
            hooks.add("trellis.shards", cursor_shards as u64);
        }
        report
    }

    /// Split the sampled points into disjoint, step-ordered cursor shards.
    ///
    /// Shard `k` covers the golden-run window `(b_k, b_{k+1}]` between two
    /// checkpoint boundaries (shard 0 starts at step 0); a point belongs
    /// to the shard in whose window its `nth` firing falls, which the
    /// boundary profiles decide exactly: the firing is past boundary `b`
    /// iff `counts_b[point] < nth`. Boundaries are cut from the checkpoint
    /// trail nearest the ideal `golden_steps / K` splits, so short
    /// programs (no checkpoints) or `K = 1` yield a single full-range
    /// shard.
    fn plan_cursor_shards(
        &self,
        cfg: &CampaignConfig,
        samples: &[(usize, InjectionPoint, SmallRng)],
    ) -> Vec<CursorShard> {
        let k = cfg.cursor_shards.unwrap_or_else(rayon::current_num_threads).max(1);
        let mut shards =
            vec![CursorShard { start_step: 0, checkpoint: None, points: Vec::new() }];
        for j in 1..k as u64 {
            let ideal = (self.golden_steps / k as u64).saturating_mul(j);
            let idx = self.checkpoints.partition_point(|c| c.step <= ideal);
            if idx == 0 {
                continue;
            }
            let step = self.checkpoints[idx - 1].step;
            if step > shards.last().expect("shard 0").start_step {
                shards.push(CursorShard {
                    start_step: step,
                    checkpoint: Some(idx - 1),
                    points: Vec::new(),
                });
            }
        }
        let mut seen: std::collections::HashSet<InjectionPoint> = std::collections::HashSet::new();
        for (_, point, _) in samples {
            if !seen.insert(*point) {
                continue;
            }
            // Sampling draws `nth` from the final profile, so every point
            // fires within the golden run; walk the boundaries to find the
            // last one the firing is past.
            let mut home = 0;
            for (s, shard) in shards.iter().enumerate().skip(1) {
                let ci = shard.checkpoint.expect("non-zero shards carry a checkpoint");
                let at = count_at(&self.checkpoints[ci].counts, point.module, point.func, point.inst);
                if at < point.nth {
                    home = s;
                } else {
                    break;
                }
            }
            shards[home].points.push(*point);
        }
        shards
    }

    /// Walk one cursor shard: replay to the window boundary, arm the
    /// shard's (rebased) breakpoints, and fork a paused snapshot per
    /// firing point. Returns the snapshots in firing order plus the steps
    /// this cursor actually executed (replay + window).
    fn run_cursor_shard<H: Hooks>(
        &self,
        cfg: &CampaignConfig,
        shard_idx: usize,
        shard: CursorShard,
        engine: &dyn ExecutionEngine,
        hooks: &H,
        ctl: &JobControl,
    ) -> ShardResult {
        let t0 = H::ENABLED.then(std::time::Instant::now);
        let mut cursor = self.template.clone();
        cursor.fuel = self.fuel_budget(cfg);
        if shard.start_step > 0 && !advance_to_step(engine, &mut cursor, shard.start_step) {
            // Unreachable for a prepared campaign (the golden run passed
            // and the budget covers it); degrade like an unfired
            // breakpoint: the shard's indexes yield no record.
            return ShardResult { snapshots: Vec::new(), steps: cursor.steps };
        }
        let replay_steps = cursor.steps;
        let start_counts = shard.checkpoint.map(|ci| &self.checkpoints[ci].counts);
        let mut breaks = BreakSet::new();
        for p in &shard.points {
            // Breakpoint ordinals count from arming: rebase the absolute
            // `nth` by the executions already behind the boundary.
            let base = start_counts.map_or(0, |c| count_at(c, p.module, p.func, p.inst));
            breaks.add(p.module, p.func, p.inst, p.nth - base);
        }
        cursor.multi_break = Some(breaks);
        let mut snapshots: Vec<(InjectionPoint, Process)> = Vec::new();
        while !cursor.multi_break.as_ref().expect("shard cursor").is_empty() {
            if ctl.is_cancelled() {
                break;
            }
            match cursor.run() {
                RunExit::BreakHit => {
                    let (module, func, inst, rel) = cursor
                        .multi_break
                        .as_mut()
                        .expect("shard cursor")
                        .take_fired()
                        .expect("BreakHit reports its firing point");
                    let base = start_counts.map_or(0, |c| count_at(c, module, func, inst));
                    let point = InjectionPoint { module, func, inst, nth: rel + base };
                    let mut snap = cursor.clone();
                    snap.multi_break = None;
                    if H::ENABLED {
                        hooks.emit(|| {
                            Event::new("trellis.fork")
                                .field("shard", shard_idx as u64)
                                .field("prefix_steps", cursor.steps)
                        });
                    }
                    snapshots.push((point, snap));
                }
                // Completion (or a trap) with points still pending: those
                // indexes yield no record, exactly like a `run_one` whose
                // breakpoint never fired.
                _ => break,
            }
        }
        if H::ENABLED {
            hooks.add("cursor.replay_steps", replay_steps);
            hooks.add("cursor.window_steps", cursor.steps - replay_steps);
            hooks.record(
                "trellis.shard_ns",
                t0.expect("enabled").elapsed().as_nanos() as u64,
            );
            hooks.emit(|| {
                Event::new("trellis.shard")
                    .field("shard", shard_idx as u64)
                    .field("start_step", shard.start_step)
                    .field("window_steps", cursor.steps - replay_steps)
                    .field("snapshots", snapshots.len() as u64)
            });
        }
        ShardResult { snapshots, steps: cursor.steps }
    }

    /// Run the full campaign under [`CampaignConfig::scheduler`].
    pub fn run(&self, cfg: &CampaignConfig) -> CampaignReport {
        self.run_with_hooks(cfg, &NoTelemetry)
    }

    /// [`run`](Self::run) with telemetry hooks. The records and aggregates
    /// are bit-identical to the hook-free run (hooks only observe); what the
    /// hooks gain is the per-phase trellis timeline, per-job spans and
    /// queue-drain events, Safeguard's recovery-phase distributions, the
    /// campaign's TLB hit counters, instruction-mix counters derived from
    /// the golden profile, and the campaign-level step-split counters.
    pub fn run_with_hooks<H: Hooks>(&self, cfg: &CampaignConfig, hooks: &H) -> CampaignReport {
        self.run_job(cfg, hooks, &JobControl::new())
    }

    /// [`run_with_hooks`](Self::run_with_hooks) with an external cancellation
    /// token — the job-shaped entry point used by the campaign server. The
    /// control block is polled between cursor-shard firings and before each
    /// suffix job (trellis) or each injection (per-injection); once
    /// [`JobControl::cancel`] is observed, no further suffix work starts and
    /// the report comes back partial with [`CampaignReport::cancelled`] set.
    /// With a never-cancelled control the result is bit-identical to
    /// [`run_with_hooks`].
    pub fn run_job<H: Hooks>(
        &self,
        cfg: &CampaignConfig,
        hooks: &H,
        ctl: &JobControl,
    ) -> CampaignReport {
        let all: Vec<usize> = (0..cfg.injections).collect();
        self.run_selected(cfg, &all, hooks, ctl, &NoSink)
    }

    /// Run only the listed injection indexes — the residual-work entry
    /// point a persistent result store uses after loading already-known
    /// records from its log. Per-index determinism (every index's RNG
    /// stream is seeded from `(cfg.seed, index)` alone) means the records
    /// produced for a subset are bit-identical to the same indexes of a
    /// full run, under either scheduler: the trellis samples only the
    /// subset's points and plans its cursor shards from those, so a
    /// residual run also *executes* only the prefix windows it needs.
    ///
    /// `indices` should be strictly increasing (records come back in that
    /// order, matching a full run's element order) and each `< cfg.injections`.
    /// Every produced record is also pushed through `sink` with its index,
    /// from pool workers, as soon as it is classified — see [`RecordSink`].
    /// `run_job` is exactly `run_selected` over `0..cfg.injections` with
    /// [`NoSink`].
    pub fn run_selected<H: Hooks>(
        &self,
        cfg: &CampaignConfig,
        indices: &[usize],
        hooks: &H,
        ctl: &JobControl,
        sink: &dyn RecordSink,
    ) -> CampaignReport {
        let compiled = if cfg.engine == EngineKind::Compiled {
            let cache = simx::TranslationCache::global();
            let (h0, m0) = (cache.hits(), cache.misses());
            let eng = self.compiled_engine(cfg).expect("engine is Compiled");
            if H::ENABLED {
                hooks.add("engine.cache_hits", cache.hits().saturating_sub(h0));
                hooks.add("engine.cache_misses", cache.misses().saturating_sub(m0));
                let st = eng.stats();
                hooks.add("engine.blocks", st.blocks);
                hooks.add("engine.ops", st.ops);
                hooks.add("engine.fused_cmp_br", st.fused_cmp_br);
                hooks.add("engine.fused_load_bin", st.fused_load_bin);
                hooks.add("engine.fused_lea_load", st.fused_lea_load);
                hooks.add("engine.fused_glo_load", st.fused_glo_load);
                hooks.add("engine.fused_mov_mov", st.fused_mov_mov);
            }
            Some(eng)
        } else {
            None
        };
        let engine = engine_ref(&compiled);
        let pool0 = H::ENABLED.then(rayon::pool_stats);
        let mut report = match cfg.scheduler {
            Scheduler::Trellis => self.run_trellis(cfg, indices, engine, hooks, ctl, sink),
            Scheduler::PerInjection => {
                self.run_per_injection(cfg, indices, engine, hooks, ctl, sink)
            }
        };
        report.cancelled = ctl.is_cancelled();
        if let Some(p0) = pool0 {
            // Work-stealing pool activity attributable to this campaign
            // (the pool is process-wide, so these are deltas).
            let p1 = rayon::pool_stats();
            hooks.add("pool.batches", p1.batches.saturating_sub(p0.batches));
            hooks.add("pool.chunks", p1.chunks.saturating_sub(p0.chunks));
            hooks.add("pool.steals", p1.steals.saturating_sub(p0.steals));
            hooks.add("pool.workers", p1.workers as u64);
        }
        if H::ENABLED {
            hooks.add("campaign.injections", indices.len() as u64);
            hooks.add("campaign.classified", report.total() as u64);
            hooks.add("steps.prefix", report.steps_prefix);
            hooks.add("steps.suffix", report.steps_suffix);
            hooks.add("steps.care", report.steps_care);
            self.record_instruction_mix(hooks);
        }
        if !cfg.keep_records {
            report.records = Vec::new();
        }
        report
    }

    /// Derive the golden run's instruction-mix counters from the execution
    /// profile — `mix.<mnemonic>` weighted by dynamic execution count. Done
    /// post-hoc against the already-collected [`Profile`], so the simulation
    /// loops are never instrumented for it.
    fn record_instruction_mix<H: Hooks>(&self, hooks: &H) {
        let mods: Vec<&simx::MachineModule> = std::iter::once(self.exe.machine.as_ref())
            .chain(self.libs.iter().map(|l| l.machine.as_ref()))
            .collect();
        for (m, funcs) in self.profile.iter().enumerate() {
            for (f, counts) in funcs.iter().enumerate() {
                for (i, &n) in counts.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    let Some(inst) =
                        mods.get(m).and_then(|mm| mm.funcs.get(f)).and_then(|mf| mf.instrs.get(i))
                    else {
                        continue;
                    };
                    hooks.add(mix_counter(inst.kind_name()), n);
                }
            }
        }
    }
}

/// View an optional compiled engine as the trait object the schedulers
/// thread through (`None` → the interpreter).
fn engine_ref(compiled: &Option<CompiledEngine>) -> &dyn ExecutionEngine {
    match compiled {
        Some(c) => c,
        None => &InterpEngine,
    }
}

/// Static `mix.*` counter name for an [`MInst::kind_name`](simx::MInst)
/// mnemonic (hook names are `&'static str`; no formatting at record time).
fn mix_counter(kind: &'static str) -> &'static str {
    match kind {
        "mov" => "mix.mov",
        "store" => "mix.store",
        "lea" => "mix.lea",
        "bin" => "mix.bin",
        "icmp" => "mix.icmp",
        "fcmp" => "mix.fcmp",
        "cast" => "mix.cast",
        "select" => "mix.select",
        "jmp" => "mix.jmp",
        "jnz" => "mix.jnz",
        "getarg" => "mix.getarg",
        "call" => "mix.call",
        "callintr" => "mix.callintr",
        "ret" => "mix.ret",
        _ => "mix.other",
    }
}

fn signal_of(kind: TrapKind) -> Signal {
    match kind {
        TrapKind::Segv(_) => Signal::Segv,
        TrapKind::Bus(_) => Signal::Bus,
        TrapKind::Abort => Signal::Abort,
        TrapKind::Fpe => Signal::Other,
        TrapKind::OutOfFuel => Signal::Other,
    }
}

/// Aggregated campaign results — the raw material for Tables 2, 3, 4, 10,
/// 11 and Figures 7, 9, 12. `PartialEq` so the campaign server's wire
/// round-trip can be asserted bit-identical in one comparison.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CampaignReport {
    /// Table 2 row.
    pub benign: usize,
    /// Table 2 row.
    pub soft_failure: usize,
    /// Table 2 row.
    pub sdc: usize,
    /// Table 2 row.
    pub hang: usize,
    /// Table 3 row: `[SIGSEGV, SIGBUS, SIGABRT, Other]`.
    pub signals: [usize; 4],
    /// Table 4 row: latency buckets `≤10, 11–50, 51–400, >400`.
    pub latency_buckets: [usize; 4],
    /// Figure 7: SIGSEGV injections evaluated under CARE.
    pub care_evaluated: usize,
    /// Figure 7: of those, recovered with clean output.
    pub care_covered: usize,
    /// Runs that completed after repair but with corrupted output: the
    /// injected fault hit a value used both as an address (repaired
    /// exactly) and as data (corrupted before CARE was ever involved).
    /// These count as *not covered*; they are not repair-introduced SDCs.
    pub care_survived_with_sdc: usize,
    /// Figure 9: modelled recovery times (ms) of covered runs.
    pub recovery_times_ms: Vec<f64>,
    /// Safeguard activations across covered runs.
    pub total_recoveries: u64,
    /// Decline-reason histogram of uncovered runs.
    pub declines: std::collections::HashMap<DeclineKind, usize>,
    /// Total dynamic instructions *actually executed* by the campaign (the
    /// denominator of simulated-instructions/sec throughput). Under the
    /// per-injection scheduler this equals the sum of the per-record
    /// `sim_steps`; under the trellis scheduler the shared cursor pass
    /// replaces the per-injection prefixes, so it is
    /// `steps_prefix + steps_suffix + steps_care`.
    pub simulated_steps: u64,
    /// Prefix-stage instructions actually executed: Σ per-record prefixes
    /// (per-injection scheduler) or the single cursor pass (trellis).
    pub steps_prefix: u64,
    /// Unprotected-suffix instructions (identical under both schedulers).
    pub steps_suffix: u64,
    /// CARE-protected re-run instructions (identical under both schedulers).
    pub steps_care: u64,
    /// Distinct trellis snapshots forked by the cursor pass (0 under the
    /// per-injection scheduler); strictly less than the classified total
    /// whenever injection indexes sampled duplicate points.
    pub trellis_snapshots: usize,
    /// Cursor shards that actually ran (had points) in the trellis cursor
    /// pass; 0 under the per-injection scheduler.
    pub cursor_shards: usize,
    /// True when the run's [`JobControl`] was cancelled before completion:
    /// the aggregates and records cover only the injections classified
    /// before the cancel was observed.
    pub cancelled: bool,
    /// Raw records; populated only when [`CampaignConfig::keep_records`]
    /// is set.
    pub records: Vec<InjectionRecord>,
}

impl CampaignReport {
    /// Build the aggregate view from raw records.
    pub fn from_records(records: Vec<InjectionRecord>) -> CampaignReport {
        let mut r = CampaignReport::default();
        for rec in &records {
            match rec.outcome {
                Outcome::Benign => r.benign += 1,
                Outcome::Sdc => r.sdc += 1,
                Outcome::Hang => r.hang += 1,
                Outcome::SoftFailure(sig) => {
                    r.soft_failure += 1;
                    let si = match sig {
                        Signal::Segv => 0,
                        Signal::Bus => 1,
                        Signal::Abort => 2,
                        Signal::Other => 3,
                    };
                    r.signals[si] += 1;
                    if let Some(lat) = rec.latency {
                        let bi = match lat {
                            0..=10 => 0,
                            11..=50 => 1,
                            51..=400 => 2,
                            _ => 3,
                        };
                        r.latency_buckets[bi] += 1;
                    }
                }
            }
            // Saturating, not wrapping: records merged out of a persisted
            // store log are not bounded by one run's fuel budget, so the
            // step sums can exceed u64 in aggregate (mirrors the
            // `Histogram::sum` saturation pinned in crates/telemetry).
            r.simulated_steps = r.simulated_steps.saturating_add(rec.sim_steps);
            r.steps_prefix = r.steps_prefix.saturating_add(rec.split.prefix);
            r.steps_suffix = r.steps_suffix.saturating_add(rec.split.suffix);
            r.steps_care = r.steps_care.saturating_add(rec.split.care);
            if let Some(c) = &rec.care {
                r.care_evaluated += 1;
                if c.covered {
                    r.care_covered += 1;
                    r.recovery_times_ms.push(c.recovery_ms);
                    r.total_recoveries = r.total_recoveries.saturating_add(c.recoveries);
                } else if let Some(d) = c.decline {
                    *r.declines.entry(d).or_default() += 1;
                } else if c.recoveries > 0 {
                    r.care_survived_with_sdc += 1;
                }
            }
        }
        r.records = records;
        r
    }

    /// Total classified injections.
    pub fn total(&self) -> usize {
        self.benign + self.soft_failure + self.sdc + self.hang
    }

    /// Figure 7's coverage metric.
    pub fn coverage(&self) -> f64 {
        if self.care_evaluated == 0 {
            0.0
        } else {
            self.care_covered as f64 / self.care_evaluated as f64
        }
    }

    /// Mean modelled recovery time of covered runs (Figure 9).
    pub fn mean_recovery_ms(&self) -> f64 {
        if self.recovery_times_ms.is_empty() {
            0.0
        } else {
            self.recovery_times_ms.iter().sum::<f64>() / self.recovery_times_ms.len() as f64
        }
    }

    /// Fraction of soft failures manifesting within `n` dynamic
    /// instructions (Table 4 analysis).
    pub fn latency_fraction_within(&self, n: u64) -> f64 {
        let total: usize = self.latency_buckets.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let within: usize = match n {
            0..=10 => self.latency_buckets[0],
            11..=50 => self.latency_buckets[..2].iter().sum(),
            51..=400 => self.latency_buckets[..3].iter().sum(),
            _ => total,
        };
        within as f64 / total as f64
    }
}

#[cfg(test)]
mod scheduler_tests {
    use super::*;
    use opt::OptLevel;

    fn tiny_campaign() -> Campaign {
        // A deliberately short program: with ~tens of eligible dynamic
        // instructions and many injections, the pigeonhole principle
        // guarantees duplicate `(I, n)` samples.
        use tinyir::builder::ModuleBuilder;
        use tinyir::{Ty, Value};
        let mut mb = ModuleBuilder::new("tiny", "tiny.c");
        let out = mb.global_zeroed("out", Ty::I64, 8);
        mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
            let acc = fb.alloca(Ty::I64, 1);
            fb.store(Value::i64(1), acc);
            fb.for_loop(Value::i64(0), fb.arg(0), |fb, i| {
                let a = fb.load(acc, Ty::I64);
                let s = fb.add(a, i, Ty::I64);
                fb.store(s, acc);
                let slot = fb.srem(i, Value::i64(8), Ty::I64);
                fb.store_elem(s, fb.global(out), slot, Ty::I64);
            });
            let r = fb.load(acc, Ty::I64);
            fb.ret(Some(r));
        });
        let w = workloads::Workload::new("tiny", mb.finish(), vec![6], vec![("out", 64)]);
        let app = care::compile(&w.module, OptLevel::O1);
        Campaign::prepare(&w, app, vec![])
    }

    fn cfg(injections: usize, scheduler: Scheduler) -> CampaignConfig {
        CampaignConfig {
            injections,
            evaluate_care: true,
            app_only: true,
            keep_records: true,
            scheduler,
            ..CampaignConfig::default()
        }
    }

    /// Duplicate-point indexes must share one trellis snapshot — and the
    /// shared-snapshot path must still reproduce the per-injection records
    /// bit for bit (each index keeps its own RNG stream, so two injections
    /// at the same point can still flip different bits).
    #[test]
    fn duplicate_points_share_a_snapshot_with_identical_records() {
        let campaign = tiny_campaign();
        let n = 60;
        let base = cfg(n, Scheduler::PerInjection);
        // Establish that this configuration actually samples duplicates.
        let points: Vec<InjectionPoint> = (0..n)
            .filter_map(|i| campaign.sample_point(&base, i).map(|(p, _)| p))
            .collect();
        let distinct: std::collections::HashSet<_> = points.iter().copied().collect();
        assert!(
            distinct.len() < points.len(),
            "test premise: duplicates must occur ({} points, {} distinct)",
            points.len(),
            distinct.len()
        );

        let legacy = campaign.run(&base);
        let trellis = campaign.run(&cfg(n, Scheduler::Trellis));
        // One snapshot per *distinct fired* point, not per injection.
        assert!(trellis.trellis_snapshots <= distinct.len());
        assert!(
            trellis.trellis_snapshots < points.len(),
            "duplicates forked extra snapshots: {} snapshots for {} sampled points",
            trellis.trellis_snapshots,
            points.len()
        );
        assert_eq!(
            legacy.records, trellis.records,
            "shared-snapshot suffixes diverged from per-injection runs"
        );
    }

    /// The trellis report charges the shared cursor pass once: strictly
    /// fewer executed instructions than the per-injection engine, with the
    /// identical suffix/CARE stages.
    #[test]
    fn trellis_executes_one_shared_prefix_pass() {
        let campaign = tiny_campaign();
        let legacy = campaign.run(&cfg(40, Scheduler::PerInjection));
        let trellis = campaign.run(&cfg(40, Scheduler::Trellis));
        assert_eq!(legacy.steps_suffix, trellis.steps_suffix);
        assert_eq!(legacy.steps_care, trellis.steps_care);
        assert!(
            trellis.steps_prefix < legacy.steps_prefix,
            "cursor pass ({}) must undercut per-injection prefixes ({})",
            trellis.steps_prefix,
            legacy.steps_prefix
        );
        assert_eq!(
            trellis.simulated_steps,
            trellis.steps_prefix + trellis.steps_suffix + trellis.steps_care
        );
        assert_eq!(legacy.trellis_snapshots, 0);
        // The per-record *attributed* totals stay equal either way.
        assert_eq!(
            legacy.records.iter().map(|r| r.sim_steps).sum::<u64>(),
            trellis.records.iter().map(|r| r.sim_steps).sum::<u64>()
        );
    }

    /// The parallel cursor pass is invisible in the records: any explicit
    /// shard count reproduces the single cursor bit for bit, each shard
    /// replays its boundary prefix (so the executed-prefix accounting
    /// grows with K while attributed records stay fixed), and snapshots
    /// dedup across shards exactly as before.
    #[test]
    fn sharded_cursors_match_single_cursor_and_split_the_prefix() {
        let w = workloads::hpccg::build(3, 2);
        let app = care::compile(&w.module, OptLevel::O1);
        let campaign = Campaign::prepare(&w, app, vec![]);
        assert!(
            !campaign.checkpoints.is_empty(),
            "test premise: hpccg(3,2) must outrun the checkpoint quantum"
        );
        let config = |shards| CampaignConfig { cursor_shards: Some(shards), ..cfg(60, Scheduler::Trellis) };
        let single = campaign.run(&config(1));
        assert_eq!(single.cursor_shards, 1);
        for k in [2, 4, 16] {
            let sharded = campaign.run(&config(k));
            assert_eq!(single.records, sharded.records, "records diverged at {k} shards");
            assert_eq!(single.trellis_snapshots, sharded.trellis_snapshots);
            assert!(
                sharded.cursor_shards > 1 && sharded.cursor_shards <= k,
                "expected multiple populated shards at K={k}, got {}",
                sharded.cursor_shards
            );
            // Replayed boundary prefixes are extra *executed* steps, and
            // only they: the suffix/CARE stages are untouched.
            assert!(sharded.steps_prefix > single.steps_prefix);
            assert_eq!(single.steps_suffix, sharded.steps_suffix);
            assert_eq!(single.steps_care, sharded.steps_care);
        }
    }

    /// Sharding follows the pool width when `cursor_shards` is `None`.
    #[test]
    fn default_shard_count_tracks_the_pool_width() {
        let w = workloads::hpccg::build(3, 2);
        let app = care::compile(&w.module, OptLevel::O1);
        let campaign = Campaign::prepare(&w, app, vec![]);
        let base = rayon::with_threads(1, || campaign.run(&cfg(40, Scheduler::Trellis)));
        assert_eq!(base.cursor_shards, 1);
        let wide = rayon::with_threads(4, || campaign.run(&cfg(40, Scheduler::Trellis)));
        assert!(wide.cursor_shards > 1, "4-thread run stayed single-sharded");
        assert_eq!(base.records, wide.records);
    }

    /// Suffix forks budget fuel against *remaining* steps: every record's
    /// prefix + suffix stays within the campaign hang bound, and a hang
    /// classified by the trellis engine burned exactly the remaining budget
    /// rather than a fresh full one.
    #[test]
    fn suffix_forks_respect_the_campaign_fuel_budget() {
        // hpccg(3,2) at the default seed is known to hang on some of the
        // first 100 injections (see tests/golden.rs), so the equality leg
        // below is actually exercised.
        let w = workloads::hpccg::build(3, 2);
        let app = care::compile(&w.module, OptLevel::O1);
        let campaign = Campaign::prepare(&w, app, vec![]);
        let config = cfg(100, Scheduler::Trellis);
        let budget = campaign.fuel_budget(&config);
        let r = campaign.run(&config);
        assert!(r.hang > 0, "test premise: need at least one hang");
        for rec in &r.records {
            assert!(
                rec.split.prefix + rec.split.suffix <= budget,
                "record at {:?} overshot the hang bound: {} + {} > {}",
                rec.point,
                rec.split.prefix,
                rec.split.suffix,
                budget
            );
            if rec.outcome == Outcome::Hang {
                assert_eq!(rec.split.prefix + rec.split.suffix, budget);
            }
        }
    }

    /// A never-cancelled `JobControl` is an observational no-op: `run_job`
    /// reproduces `run` bit for bit under both schedulers, reports the
    /// classified count through the control block, and leaves the report's
    /// `cancelled` flag clear.
    #[test]
    fn uncancelled_job_control_is_a_no_op() {
        let campaign = tiny_campaign();
        for scheduler in [Scheduler::Trellis, Scheduler::PerInjection] {
            let config = cfg(40, scheduler);
            let plain = campaign.run(&config);
            let ctl = JobControl::new();
            let job = campaign.run_job(&config, &NoTelemetry, &ctl);
            assert_eq!(plain.records, job.records, "{scheduler:?} diverged under run_job");
            assert!(!job.cancelled);
            assert_eq!(ctl.classified(), job.total() as u64);
        }
    }

    /// A control cancelled before the run starts yields an empty, flagged
    /// report — no suffix work runs — and the campaign object stays usable
    /// for a fresh, complete run afterwards.
    #[test]
    fn pre_cancelled_job_yields_empty_flagged_report() {
        let campaign = tiny_campaign();
        for scheduler in [Scheduler::Trellis, Scheduler::PerInjection] {
            let config = cfg(40, scheduler);
            let ctl = JobControl::new();
            ctl.cancel();
            let report = campaign.run_job(&config, &NoTelemetry, &ctl);
            assert!(report.cancelled, "{scheduler:?} report not flagged cancelled");
            assert!(report.records.is_empty(), "{scheduler:?} ran suffixes after cancel");
            assert_eq!(report.total(), 0);
            assert_eq!(ctl.classified(), 0);
        }
        // The cancel is scoped to the control block, not the campaign.
        let fresh = campaign.run(&cfg(40, Scheduler::Trellis));
        assert!(!fresh.cancelled);
        assert_eq!(fresh.total(), fresh.records.len());
    }

    /// Scheduler and fault-model wire names round-trip through `FromStr`.
    #[test]
    fn scheduler_and_fault_model_names_round_trip() {
        for s in [Scheduler::Trellis, Scheduler::PerInjection] {
            assert_eq!(s.name().parse::<Scheduler>().unwrap(), s);
        }
        assert!("nope".parse::<Scheduler>().is_err());
        for m in [crate::FaultModel::SingleBit, crate::FaultModel::DoubleBit] {
            assert_eq!(m.name().parse::<crate::FaultModel>().unwrap(), m);
        }
        assert!("triple".parse::<crate::FaultModel>().is_err());
    }
}
