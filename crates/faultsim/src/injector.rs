//! The fault injector: `(I, n)` selection from a Pin-style profile and
//! bit-flips on destination operands.
//!
//! Methodology follows paper §2.1.1 and §5.1:
//!
//! * a profiling run counts executions of every static instruction;
//! * a static instruction is drawn weighted by its execution count, and an
//!   execution ordinal `n` uniformly within its count, approximating a
//!   uniformly-random *dynamic* instruction;
//! * the simulated ptrace-attach sets a breakpoint that stops **right after
//!   the n-th execution**, then flips one (or two, Appendix A) bits in the
//!   instruction's destination operand: the written register, the stored
//!   memory cell, or the PC for control transfers.

use rand::rngs::SmallRng;
use rand::Rng;
use simx::{DestRef, ModuleId, Process, Profile};
use tinyir::mem::Memory;
use tinyir::FuncId;

/// Single- or double-bit-flip fault model (paper §2 / Appendix A).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultModel {
    /// Flip one uniformly-chosen bit.
    SingleBit,
    /// Flip two distinct uniformly-chosen bits.
    DoubleBit,
}

impl FaultModel {
    /// Stable wire/CLI name; inverse of [`FromStr`](std::str::FromStr).
    pub fn name(self) -> &'static str {
        match self {
            FaultModel::SingleBit => "single",
            FaultModel::DoubleBit => "double",
        }
    }
}

impl std::str::FromStr for FaultModel {
    type Err = String;
    fn from_str(s: &str) -> Result<FaultModel, String> {
        match s {
            "single" => Ok(FaultModel::SingleBit),
            "double" => Ok(FaultModel::DoubleBit),
            other => Err(format!("unknown fault model {other:?} (single|double)")),
        }
    }
}

/// A chosen injection point: the `(I, n)` pair of §5.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct InjectionPoint {
    /// Module of the target instruction.
    pub module: ModuleId,
    /// Function of the target instruction.
    pub func: FuncId,
    /// Static instruction index.
    pub inst: usize,
    /// Stop after this many executions (1-based).
    pub nth: u64,
}

/// Draw an injection point from a profile, optionally restricted to a set
/// of modules (the §5 campaigns inject only into application code).
pub fn pick_injection_point(
    profile: &Profile,
    rng: &mut SmallRng,
    modules: Option<&[ModuleId]>,
    eligible: &dyn Fn(usize, usize, usize) -> bool,
) -> Option<InjectionPoint> {
    let allowed = |m: usize| {
        modules
            .map(|ms| ms.iter().any(|mm| mm.0 as usize == m))
            .unwrap_or(true)
    };
    let total: u64 = profile
        .iter()
        .enumerate()
        .filter(|(m, _)| allowed(*m))
        .flat_map(|(m, fs)| {
            fs.iter().enumerate().flat_map(move |(f, is)| {
                is.iter()
                    .enumerate()
                    .map(move |(i, &c)| if eligible(m, f, i) { c } else { 0 })
            })
        })
        .sum();
    if total == 0 {
        return None;
    }
    let mut r = rng.gen_range(0..total);
    for (m, fs) in profile.iter().enumerate() {
        if !allowed(m) {
            continue;
        }
        for (f, is) in fs.iter().enumerate() {
            for (i, &c) in is.iter().enumerate() {
                let c = if eligible(m, f, i) { c } else { 0 };
                if r < c {
                    let nth = rng.gen_range(1..=c);
                    return Some(InjectionPoint {
                        module: ModuleId(m as u32),
                        func: FuncId(f as u32),
                        inst: i,
                        nth,
                    });
                }
                r -= c;
            }
        }
    }
    None
}

/// Bits to flip for a destination of `width` bits under `model`.
pub fn pick_bits(model: FaultModel, width: u32, rng: &mut SmallRng) -> Vec<u32> {
    match model {
        FaultModel::SingleBit => vec![rng.gen_range(0..width)],
        FaultModel::DoubleBit => {
            let a = rng.gen_range(0..width);
            let mut b = rng.gen_range(0..width);
            while b == a {
                b = rng.gen_range(0..width);
            }
            vec![a, b]
        }
    }
}

/// What the injector actually corrupted (for post-hoc analysis).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InjectedInto {
    /// A register (id).
    Reg(u8),
    /// A memory cell (address).
    Mem(u64),
    /// The program counter.
    Pc,
    /// The destination no longer existed (e.g. unmapped store target after
    /// an earlier event) — injection skipped.
    Skipped,
}

/// Flip bits in the destination operand of the instruction the process just
/// executed (it must be stopped at a breakpoint hit on `point`). Returns
/// where the fault landed.
pub fn inject(
    process: &mut Process,
    point: InjectionPoint,
    model: FaultModel,
    rng: &mut SmallRng,
) -> InjectedInto {
    let lm = &process.image.modules[point.module.0 as usize];
    let inst = lm.module.funcs[point.func.0 as usize].instrs[point.inst].clone();
    let frame = process.frame().clone();
    match process.dest_of(&inst, &frame) {
        DestRef::Reg(r) => {
            let bits = pick_bits(model, 64, rng);
            let mut v = process.read_reg(r);
            for b in bits {
                v ^= 1u64 << b;
            }
            process.write_reg(r, v);
            InjectedInto::Reg(r.0)
        }
        DestRef::Mem(addr, size) => {
            let width = size as u32 * 8;
            let bits = pick_bits(model, width, rng);
            match process.mem.load(addr, size as u32) {
                Ok(mut v) => {
                    for b in bits {
                        v ^= 1u64 << b;
                    }
                    let _ = process.mem.store(addr, size as u32, v);
                    InjectedInto::Mem(addr)
                }
                Err(_) => InjectedInto::Skipped,
            }
        }
        DestRef::Pc => {
            // Flip low bits of the instruction index: small flips jump
            // within the function (possible SDC), large ones fetch from
            // nowhere (SIGSEGV on fetch).
            let bits = pick_bits(model, 20, rng);
            let mut idx = process.frame().idx as u64;
            for b in bits {
                idx ^= 1u64 << b;
            }
            process.frame_mut().idx = idx as usize;
            InjectedInto::Pc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn weighted_selection_prefers_hot_instructions() {
        // func 0: inst 0 executed 990 times, inst 1 executed 10 times.
        let profile: Profile = vec![vec![vec![990, 10]]];
        let mut rng = SmallRng::seed_from_u64(7);
        let mut hot = 0;
        for _ in 0..1000 {
            let p = pick_injection_point(&profile, &mut rng, None, &|_, _, _| true).unwrap();
            if p.inst == 0 {
                hot += 1;
            }
            assert!(p.nth >= 1);
            assert!(p.nth <= if p.inst == 0 { 990 } else { 10 });
        }
        assert!(hot > 930, "hot instruction should dominate: {hot}");
    }

    #[test]
    fn module_filter_restricts_targets() {
        let profile: Profile = vec![vec![vec![100]], vec![vec![100]]];
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let p =
                pick_injection_point(&profile, &mut rng, Some(&[ModuleId(0)]), &|_, _, _| true)
                    .unwrap();
            assert_eq!(p.module, ModuleId(0));
        }
    }

    #[test]
    fn empty_profile_yields_no_point() {
        let profile: Profile = vec![vec![vec![0, 0]]];
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(pick_injection_point(&profile, &mut rng, None, &|_, _, _| true).is_none());
    }

    #[test]
    fn bit_pickers_respect_model_and_width() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = pick_bits(FaultModel::SingleBit, 32, &mut rng);
            assert_eq!(s.len(), 1);
            assert!(s[0] < 32);
            let d = pick_bits(FaultModel::DoubleBit, 8, &mut rng);
            assert_eq!(d.len(), 2);
            assert_ne!(d[0], d[1]);
            assert!(d.iter().all(|&b| b < 8));
        }
    }

    #[test]
    fn double_flip_is_involution() {
        // Flipping the same two bits twice restores the value — a sanity
        // property of the injector's XOR mechanics.
        let mut v = 0xdead_beef_u64;
        for b in [3u32, 17] {
            v ^= 1 << b;
        }
        for b in [3u32, 17] {
            v ^= 1 << b;
        }
        assert_eq!(v, 0xdead_beef);
    }
}
