//! # faultsim — the instruction-level fault-injection campaign engine
//!
//! Reproduces the paper's two injection methodologies:
//!
//! * §2.1.1 (GDB/Python tool): attach at a random dynamic instruction, flip
//!   bit(s) in its destination operand, run to an outcome, classify as
//!   Benign / Soft Failure (by signal) / SDC / Hang and record the
//!   manifestation latency.
//! * §5.1 (Pin-profiled tool): draw `(I, n)` from the per-static-instruction
//!   execution profile, restrict targets to application code, and for every
//!   SIGSEGV-producing injection re-run under Safeguard to measure CARE's
//!   coverage and recovery time.
//!
//! Campaigns are deterministic in their seed and rayon-parallel across
//! injections.

pub mod campaign;
pub mod injector;

pub use campaign::{
    Campaign, CampaignConfig, CampaignReport, CareResult, InjectionRecord, JobControl, NoSink,
    Outcome, RecordSink, Scheduler, Signal, StepSplit,
};
pub use injector::{FaultModel, InjectedInto, InjectionPoint};
pub use simx::EngineKind;

#[cfg(test)]
mod tests {
    use super::*;
    use care::prelude::*;

    fn scaled(n: usize) -> usize {
        if cfg!(debug_assertions) {
            (n / 3).max(25)
        } else {
            n
        }
    }

    fn small_campaign(level: OptLevel, n: usize, care_eval: bool) -> CampaignReport {
        let n = scaled(n);
        let w = workloads::hpccg::build(3, 3);
        let app = care::compile(&w.module, level);
        let c = Campaign::prepare(&w, app, vec![]);
        let cfg = CampaignConfig {
            injections: n,
            evaluate_care: care_eval,
            app_only: care_eval,
            ..CampaignConfig::default()
        };
        c.run(&cfg)
    }

    #[test]
    fn campaign_classifies_all_outcome_kinds() {
        let n = scaled(150);
        let r = small_campaign(OptLevel::O0, 150, false);
        assert!(
            r.total() * 10 >= n * 9,
            "most injections classified: {} of {n}",
            r.total()
        );
        assert!(r.benign > 0, "some faults vanish");
        assert!(r.soft_failure > 0, "some faults crash");
        // SIGSEGV dominates the soft-failure signals (paper Table 3).
        assert!(
            r.signals[0] * 2 > r.soft_failure,
            "SIGSEGV should be the majority symptom: {:?}",
            r.signals
        );
    }

    #[test]
    fn latency_is_mostly_short(/* paper Table 4: >83% within 50 instrs */) {
        let r = small_campaign(OptLevel::O0, 150, false);
        if r.soft_failure >= 10 {
            assert!(
                r.latency_fraction_within(400) > 0.5,
                "latencies: {:?}",
                r.latency_buckets
            );
        }
    }

    #[test]
    fn care_recovers_a_majority_of_segv_faults() {
        let r = small_campaign(OptLevel::O0, 120, true);
        assert!(r.care_evaluated > 0, "need SIGSEGV injections to evaluate");
        assert!(
            r.coverage() > 0.5,
            "coverage {:.2} over {} SIGSEGV faults (declines: {:?})",
            r.coverage(),
            r.care_evaluated,
            r.declines
        );
        assert!(r.mean_recovery_ms() > 1.0);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let w = workloads::hpccg::build(3, 2);
        let app = care::compile(&w.module, OptLevel::O0);
        let c = Campaign::prepare(&w, app, vec![]);
        let cfg = CampaignConfig { injections: scaled(40), ..CampaignConfig::default() };
        let a = c.run(&cfg);
        let b = c.run(&cfg);
        assert_eq!(a.benign, b.benign);
        assert_eq!(a.soft_failure, b.soft_failure);
        assert_eq!(a.sdc, b.sdc);
        assert_eq!(a.signals, b.signals);
    }

    #[test]
    fn double_bit_model_changes_outcome_mix() {
        let w = workloads::hpccg::build(3, 2);
        let app = care::compile(&w.module, OptLevel::O0);
        let c = Campaign::prepare(&w, app, vec![]);
        let single = c.run(&CampaignConfig {
            injections: scaled(80),
            model: FaultModel::SingleBit,
            ..CampaignConfig::default()
        });
        let double = c.run(&CampaignConfig {
            injections: scaled(80),
            model: FaultModel::DoubleBit,
            ..CampaignConfig::default()
        });
        // Appendix A: the double-bit model produces at least as many soft
        // failures (allow slack for small samples).
        assert!(
            double.soft_failure + 8 >= single.soft_failure,
            "single {} vs double {}",
            single.soft_failure,
            double.soft_failure
        );
    }
}
