//! Use–def chains: for each value, who uses it.

use tinyir::{Function, InstrId, InstrKind, Value};

/// Users of every instruction-defined value and of every argument.
#[derive(Debug, Clone)]
pub struct UseDef {
    /// `users[i]` = instructions that use `%vi` as an operand.
    pub users: Vec<Vec<InstrId>>,
    /// `arg_users[a]` = instructions that use argument `a`.
    pub arg_users: Vec<Vec<InstrId>>,
}

impl UseDef {
    /// Compute use–def chains for `f`.
    pub fn compute(f: &Function) -> UseDef {
        let mut users = vec![Vec::new(); f.instrs.len()];
        let mut arg_users = vec![Vec::new(); f.params.len()];
        for (_, block) in f.block_iter() {
            for &iid in &block.instrs {
                for v in f.instr(iid).operands() {
                    match v {
                        Value::Instr(d) => users[d.0 as usize].push(iid),
                        Value::Arg(a) => arg_users[a as usize].push(iid),
                        _ => {}
                    }
                }
            }
        }
        UseDef { users, arg_users }
    }

    /// Number of uses of `%v`.
    pub fn use_count(&self, v: InstrId) -> usize {
        self.users[v.0 as usize].len()
    }

    /// The single user of `%v` if it has exactly one (the precondition for
    /// CISC folding a load into its consumer during instruction selection).
    pub fn single_user(&self, v: InstrId) -> Option<InstrId> {
        match self.users[v.0 as usize].as_slice() {
            [u] => Some(*u),
            _ => None,
        }
    }

    /// True if `%v` has no uses (dead unless it has side effects).
    pub fn is_unused(&self, v: InstrId) -> bool {
        self.users[v.0 as usize].is_empty()
    }
}

/// Count the binary/cast/gep/call-math operations feeding an address operand
/// — the paper's Table 5 statistic ("number of operations involved in
/// address calculations").
pub fn address_computation_ops(f: &Function, mem_access: InstrId) -> usize {
    let Some(addr) = f.instr(mem_access).addr_operand() else {
        return 0;
    };
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![addr];
    let mut count = 0usize;
    while let Some(v) = stack.pop() {
        let Value::Instr(id) = v else { continue };
        if !seen.insert(id) {
            continue;
        }
        match &f.instr(id).kind {
            InstrKind::Bin { lhs, rhs, .. } => {
                count += 1;
                stack.push(*lhs);
                stack.push(*rhs);
            }
            InstrKind::Gep { base, index, .. } => {
                // A scaled gep lowers to an addition plus a multiplication
                // (`base + index*size`), which is how the paper's LLVM-level
                // count sees it; an unscaled (constant-index) gep is a
                // single addition.
                count += if index.is_const() { 1 } else { 2 };
                stack.push(*base);
                stack.push(*index);
            }
            InstrKind::Cast { val, .. } => {
                stack.push(*val);
            }
            InstrKind::Load { .. } | InstrKind::Phi { .. } | InstrKind::Alloca { .. } => {}
            InstrKind::Call { args, .. } => {
                count += 1;
                for a in args {
                    stack.push(*a);
                }
            }
            InstrKind::Select { cond, t, f: fv, .. } => {
                count += 1;
                stack.push(*cond);
                stack.push(*t);
                stack.push(*fv);
            }
            _ => {}
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::builder::ModuleBuilder;
    use tinyir::{Ty, Value};

    #[test]
    fn counts_and_single_user() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("f", vec![Ty::I64], Some(Ty::I64), |fb| {
            let a = fb.add(fb.arg(0), Value::i64(1), Ty::I64); // v0: 2 uses
            let b = fb.mul(a, a, Ty::I64); // v1: 1 use
            fb.ret(Some(b));
        });
        let m = mb.finish();
        let ud = UseDef::compute(&m.funcs[0]);
        assert_eq!(ud.use_count(InstrId(0)), 2);
        assert_eq!(ud.single_user(InstrId(1)), Some(InstrId(2)));
        assert_eq!(ud.single_user(InstrId(0)), None);
        assert_eq!(ud.arg_users[0].len(), 1);
    }

    #[test]
    fn address_op_counting_matches_stencil_shape() {
        // Reproduce the paper's Figure 2 address shape:
        // phitmp[(mzeta+1)*(igrid[i]-igrid_in)+k]
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define(
            "stencil",
            vec![Ty::Ptr, Ty::Ptr, Ty::I64, Ty::I64, Ty::I64, Ty::I64],
            Some(Ty::F64),
            |fb| {
                let (phitmp, igrid, mzeta, igrid_in, i, k) = (
                    fb.arg(0),
                    fb.arg(1),
                    fb.arg(2),
                    fb.arg(3),
                    fb.arg(4),
                    fb.arg(5),
                );
                let gi = fb.load_elem(igrid, i, Ty::I64); // gep + load
                let m1 = fb.add(mzeta, Value::i64(1), Ty::I64);
                let d = fb.sub(gi, igrid_in, Ty::I64);
                let p = fb.mul(m1, d, Ty::I64);
                let idx = fb.add(p, k, Ty::I64);
                let v = fb.load_elem(phitmp, idx, Ty::F64); // gep + load
                fb.ret(Some(v));
            },
        );
        let m = mb.finish();
        let f = &m.funcs[0];
        let loads = f.mem_access_instrs();
        let final_load = *loads.last().unwrap();
        // gep(phitmp)=2 + add + mul + sub + m1-add = 6 ops (the inner gep
        // for igrid terminates at the load).
        assert_eq!(address_computation_ops(f, final_load), 6);
        // The igrid[i] load's own address: its scaled gep (add + mul).
        assert_eq!(address_computation_ops(f, loads[0]), 2);
    }
}
