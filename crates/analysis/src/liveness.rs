//! Per-instruction liveness of SSA values.
//!
//! Armor's terminal-value rule (paper §3.2) needs two queries:
//!
//! 1. **is `v` live at instruction `I`?** — a value may only become a
//!    recovery-kernel parameter if it is still live (hence still present in
//!    a register or stack slot) when the protected memory access executes;
//! 2. **does `v` have a non-local use?** — the paper observes that a value
//!    that is live *and used outside its defining basic block* will not be
//!    folded away by machine-dependent lowering, so it is guaranteed to be
//!    addressable at recovery time.
//!
//! Both queries are answered from a standard backward dataflow followed by a
//! per-instruction refinement within each block.

use crate::cfg::Cfg;
use std::collections::HashSet;
use tinyir::{Function, InstrId, InstrKind, Value};

/// Liveness facts for one function.
///
/// Function arguments are tracked alongside instruction-defined values via
/// pseudo-ids: argument `a` is keyed as `InstrId(n_instrs + a)` (see
/// [`Liveness::arg_key`]). Arguments are defined at function entry, so their
/// live range starts at the entry block.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Number of real (arena) instructions; pseudo-ids start here.
    n_instrs: u32,
    /// `live_before[i]` = set of instruction-defined values live immediately
    /// before instruction `i` executes (index = arena id).
    live_before: Vec<HashSet<InstrId>>,
    /// `live_after[i]` = set live immediately after `i`.
    live_after: Vec<HashSet<InstrId>>,
    /// Values used by at least one instruction outside their defining block.
    nonlocal: Vec<bool>,
}

impl Liveness {
    /// Compute liveness for `f` over its CFG.
    pub fn compute(f: &Function, cfg: &Cfg) -> Liveness {
        let n_instr = f.instrs.len() + f.params.len();
        let n_real = f.instrs.len() as u32;
        let key_of = |v: &Value| -> Option<InstrId> {
            match v {
                Value::Instr(d) => Some(*d),
                Value::Arg(a) => Some(InstrId(n_real + a)),
                _ => None,
            }
        };
        let n_block = f.blocks.len();
        let owner = f.instr_blocks();
        // Arguments are "defined" in the entry block.
        let arg_owner = tinyir::BlockId(0);
        let owner_of = |id: InstrId| -> tinyir::BlockId {
            if id.0 < n_real {
                owner[id.0 as usize]
            } else {
                arg_owner
            }
        };

        // use[b], def[b] block summaries. Phi uses count as uses at the end
        // of the corresponding predecessor (standard SSA treatment).
        let mut use_b: Vec<HashSet<InstrId>> = vec![HashSet::new(); n_block];
        let mut def_b: Vec<HashSet<InstrId>> = vec![HashSet::new(); n_block];
        // Extra live-out contributions from phi uses in successors.
        let mut phi_out: Vec<HashSet<InstrId>> = vec![HashSet::new(); n_block];
        let mut nonlocal = vec![false; n_instr];

        for (bid, block) in f.block_iter() {
            let b = bid.0 as usize;
            for &iid in &block.instrs {
                let instr = f.instr(iid);
                match &instr.kind {
                    InstrKind::Phi { incomings, .. } => {
                        for (inb, v) in incomings {
                            if let Some(d) = key_of(v) {
                                phi_out[inb.0 as usize].insert(d);
                                nonlocal[d.0 as usize] = true;
                            }
                        }
                    }
                    _ => {
                        for v in instr.operands() {
                            if let Some(d) = key_of(&v) {
                                if !def_b[b].contains(&d) {
                                    use_b[b].insert(d);
                                }
                                if owner_of(d) != bid {
                                    nonlocal[d.0 as usize] = true;
                                }
                            }
                        }
                    }
                }
                if instr.result_ty().is_some() {
                    def_b[b].insert(iid);
                }
            }
        }

        // Backward dataflow to fixpoint on block live-in/out.
        let mut live_in: Vec<HashSet<InstrId>> = vec![HashSet::new(); n_block];
        let mut live_out: Vec<HashSet<InstrId>> = vec![HashSet::new(); n_block];
        let mut changed = true;
        while changed {
            changed = false;
            // Iterate blocks in reverse RPO for fast convergence.
            for &bid in cfg.rpo.iter().rev() {
                let b = bid.0 as usize;
                let mut out: HashSet<InstrId> = phi_out[b].clone();
                for s in &cfg.succs[b] {
                    for v in &live_in[s.0 as usize] {
                        out.insert(*v);
                    }
                }
                let mut inn: HashSet<InstrId> = use_b[b].clone();
                for v in &out {
                    if !def_b[b].contains(v) {
                        inn.insert(*v);
                    }
                }
                if out != live_out[b] || inn != live_in[b] {
                    live_out[b] = out;
                    live_in[b] = inn;
                    changed = true;
                }
            }
        }

        // Per-instruction refinement: walk each block backward.
        let mut live_before: Vec<HashSet<InstrId>> = vec![HashSet::new(); n_instr];
        let mut live_after: Vec<HashSet<InstrId>> = vec![HashSet::new(); n_instr];
        for (bid, block) in f.block_iter() {
            let b = bid.0 as usize;
            let mut live = live_out[b].clone();
            for &iid in block.instrs.iter().rev() {
                live_after[iid.0 as usize] = live.clone();
                let instr = f.instr(iid);
                if instr.result_ty().is_some() {
                    live.remove(&iid);
                }
                if !matches!(instr.kind, InstrKind::Phi { .. }) {
                    for v in instr.operands() {
                        if let Some(d) = key_of(&v) {
                            live.insert(d);
                        }
                    }
                }
                live_before[iid.0 as usize] = live.clone();
            }
        }

        Liveness { n_instrs: n_real, live_before, live_after, nonlocal }
    }

    /// The pseudo-id under which argument `a` is tracked.
    pub fn arg_key(&self, a: u32) -> InstrId {
        InstrId(self.n_instrs + a)
    }

    /// Liveness key for any trackable value (`None` for constants/globals).
    pub fn key_of(&self, v: Value) -> Option<InstrId> {
        match v {
            Value::Instr(d) => Some(d),
            Value::Arg(a) => Some(InstrId(self.n_instrs + a)),
            _ => None,
        }
    }

    /// Is `v` (instruction result or argument) live immediately before `at`?
    /// Arguments with no remaining uses are dead like any other value.
    pub fn value_live_at(&self, v: Value, at: InstrId) -> bool {
        match self.key_of(v) {
            Some(k) => self.live_before[at.0 as usize].contains(&k),
            None => false,
        }
    }

    /// Non-local-use check for any trackable value.
    pub fn value_has_nonlocal_use(&self, v: Value) -> bool {
        self.key_of(v)
            .map(|k| self.nonlocal[k.0 as usize])
            .unwrap_or(false)
    }

    /// Is instruction-defined value `v` live immediately **before** `at`
    /// executes? (This is the paper's "live at I" predicate: the input
    /// values of a recovery kernel must satisfy it.)
    pub fn live_at(&self, v: InstrId, at: InstrId) -> bool {
        self.live_before[at.0 as usize].contains(&v)
    }

    /// Is `v` live immediately after `at`?
    pub fn live_after_instr(&self, v: InstrId, at: InstrId) -> bool {
        self.live_after[at.0 as usize].contains(&v)
    }

    /// Does `v` have at least one use outside its defining block? Values
    /// with only block-local uses may be folded by instruction selection and
    /// are therefore not safe recovery-kernel parameters (paper §3.2).
    pub fn has_nonlocal_use(&self, v: InstrId) -> bool {
        self.nonlocal[v.0 as usize]
    }

    /// The set of values live before `at` (borrowed).
    pub fn live_before_set(&self, at: InstrId) -> &HashSet<InstrId> {
        &self.live_before[at.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::builder::ModuleBuilder;
    use tinyir::{Ty, Value};

    /// Build: x = a+b; y = x*2; store y; z = a-b; store z.
    /// At the first store, `x` is dead (already consumed), `a`/`b` inputs
    /// are args (not tracked), and `y` is live.
    #[test]
    fn straight_line_liveness() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("f", vec![Ty::I64, Ty::I64, Ty::Ptr], None, |fb| {
            let x = fb.add(fb.arg(0), fb.arg(1), Ty::I64); // v0
            let y = fb.mul(x, Value::i64(2), Ty::I64); // v1
            fb.store_elem(y, fb.arg(2), Value::i64(0), Ty::I64); // v2 gep, v3 store
            let z = fb.sub(fb.arg(0), fb.arg(1), Ty::I64); // v4
            fb.store_elem(z, fb.arg(2), Value::i64(1), Ty::I64); // v5 gep, v6 store
            fb.ret(None);
        });
        let m = mb.finish();
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let lv = Liveness::compute(f, &cfg);
        let (x, y, store1) = (InstrId(0), InstrId(1), InstrId(3));
        assert!(!lv.live_at(x, store1), "x consumed by y already");
        assert!(lv.live_at(y, store1), "y is the stored value");
        assert!(!lv.live_after_instr(y, store1), "y dead after its only use");
    }

    #[test]
    fn loop_carried_values_live_across_backedge() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("f", vec![Ty::Ptr, Ty::I64], None, |fb| {
            // Loop-invariant value computed in the preheader.
            let stride = fb.mul(fb.arg(1), Value::i64(8), Ty::I64); // v0
            fb.for_loop(Value::i64(0), fb.arg(1), |fb, iv| {
                let off = fb.mul(iv, stride, Ty::I64);
                fb.store_elem(Value::f64(1.0), fb.arg(0), off, Ty::F64);
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let lv = Liveness::compute(f, &cfg);
        let stride = InstrId(0);
        // The store inside the loop body:
        let store = f
            .mem_access_instrs()
            .into_iter()
            .find(|&i| matches!(f.instr(i).kind, tinyir::InstrKind::Store { .. }))
            .unwrap();
        assert!(lv.live_at(stride, store), "loop-invariant stride live in body");
        assert!(lv.has_nonlocal_use(stride), "stride used outside its block");
    }

    #[test]
    fn local_only_values_are_not_nonlocal() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("f", vec![Ty::I64], Some(Ty::I64), |fb| {
            let t = fb.add(fb.arg(0), Value::i64(1), Ty::I64); // v0: local use only
            let u = fb.mul(t, Value::i64(3), Ty::I64);
            fb.ret(Some(u));
        });
        let m = mb.finish();
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let lv = Liveness::compute(f, &cfg);
        assert!(!lv.has_nonlocal_use(InstrId(0)));
    }

    #[test]
    fn phi_incomings_extend_liveness_to_pred_end() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("f", vec![Ty::I64], Some(Ty::I64), |fb| {
            // The loop phi uses its start value from the preheader; the
            // value feeding the phi must be live out of the preheader.
            let init = fb.mul(fb.arg(0), Value::i64(7), Ty::I64); // v0
            let acc = fb.alloca(Ty::I64, 1);
            fb.store(init, acc);
            fb.for_loop(init, fb.arg(0), |fb, iv| {
                let a = fb.load(acc, Ty::I64);
                let s = fb.add(a, iv, Ty::I64);
                fb.store(s, acc);
            });
            let r = fb.load(acc, Ty::I64);
            fb.ret(Some(r));
        });
        let m = mb.finish();
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let lv = Liveness::compute(f, &cfg);
        // init (v0) feeds the phi: it must be live at the preheader store.
        let store = f.mem_access_instrs()[0];
        assert!(lv.live_at(InstrId(0), store));
        assert!(lv.has_nonlocal_use(InstrId(0)));
    }
}
