//! Control-flow graph utilities: successor/predecessor maps and orderings.

use tinyir::{BlockId, Function};

/// Predecessor/successor maps and traversal orders for one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successors of each block (index = block id).
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors of each block (index = block id).
    pub preds: Vec<Vec<BlockId>>,
    /// Reverse postorder over reachable blocks, starting at entry.
    pub rpo: Vec<BlockId>,
    /// `true` for blocks reachable from the entry.
    pub reachable: Vec<bool>,
}

impl Cfg {
    /// Build the CFG of `f`.
    pub fn new(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (bid, block) in f.block_iter() {
            let Some(&last) = block.instrs.last() else { continue };
            for s in f.instr(last).successors() {
                succs[bid.0 as usize].push(s);
                preds[s.0 as usize].push(bid);
            }
        }
        // Postorder DFS from entry.
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(f.entry(), 0)];
        visited[f.entry().0 as usize] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.0 as usize].len() {
                let s = succs[b.0 as usize][*i];
                *i += 1;
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        Cfg { succs, preds, rpo: post, reachable: visited }
    }

    /// Number of blocks (including unreachable ones).
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True when the function has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Position of each block in the reverse postorder (`usize::MAX` for
    /// unreachable blocks).
    pub fn rpo_index(&self) -> Vec<usize> {
        let mut idx = vec![usize::MAX; self.len()];
        for (i, b) in self.rpo.iter().enumerate() {
            idx[b.0 as usize] = i;
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::builder::ModuleBuilder;
    use tinyir::{Ty, Value};

    fn diamond() -> tinyir::Module {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("d", vec![Ty::I64], Some(Ty::I64), |fb| {
            let out = fb.alloca(Ty::I64, 1);
            let c = fb.icmp(tinyir::ICmp::Slt, fb.arg(0), Value::i64(0));
            fb.if_then_else(
                c,
                |fb| fb.store(Value::i64(-1), out),
                |fb| fb.store(Value::i64(1), out),
            );
            let r = fb.load(out, Ty::I64);
            fb.ret(Some(r));
        });
        mb.finish()
    }

    #[test]
    fn diamond_shape() {
        let m = diamond();
        let cfg = Cfg::new(&m.funcs[0]);
        assert_eq!(cfg.len(), 4);
        // Entry has two successors, join has two predecessors.
        assert_eq!(cfg.succs[0].len(), 2);
        assert_eq!(cfg.preds[3].len(), 2);
        // RPO starts at the entry and covers all 4 blocks.
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert_eq!(cfg.rpo.len(), 4);
        assert!(cfg.reachable.iter().all(|&r| r));
    }

    #[test]
    fn rpo_respects_topological_order_for_dags() {
        let m = diamond();
        let cfg = Cfg::new(&m.funcs[0]);
        let idx = cfg.rpo_index();
        // Entry before branches, branches before join.
        assert!(idx[0] < idx[1] && idx[0] < idx[2]);
        assert!(idx[1] < idx[3] && idx[2] < idx[3]);
    }

    #[test]
    fn unreachable_blocks_flagged() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("u", vec![], None, |fb| {
            fb.ret(None);
            let dead = fb.new_block("dead");
            fb.switch_to(dead);
            fb.ret(None);
        });
        let m = mb.finish();
        let cfg = Cfg::new(&m.funcs[0]);
        assert!(cfg.reachable[0]);
        assert!(!cfg.reachable[1]);
        assert_eq!(cfg.rpo.len(), 1);
    }
}
