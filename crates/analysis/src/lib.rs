//! # analysis — dataflow analyses over TinyIR
//!
//! Provides the control-flow graph ([`cfg::Cfg`]), dominator tree
//! ([`dom::DomTree`]), per-instruction liveness ([`liveness::Liveness`]) and
//! use–def chains ([`usedef::UseDef`]) that the optimiser (`opt`), backend
//! (`simx`) and the Armor recovery-kernel extractor (`armor`) are built on.
//!
//! Liveness is the paper's centrepiece analysis: Armor's terminal-value rule
//! admits a value as a recovery-kernel parameter only if it is live at the
//! protected memory access *and* has a non-local use (paper §3.2), because
//! those are the values guaranteed to survive lowering into machine code.

pub mod cfg;
pub mod dom;
pub mod liveness;
pub mod usedef;

pub use cfg::Cfg;
pub use dom::DomTree;
pub use liveness::Liveness;
pub use usedef::{address_computation_ops, UseDef};
