//! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

use crate::cfg::Cfg;
use tinyir::BlockId;

/// Immediate-dominator tree for one function's CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` = immediate dominator of block `b` (`None` for the entry
    /// and for unreachable blocks).
    pub idom: Vec<Option<BlockId>>,
    /// Depth of each block in the dominator tree (entry = 0).
    pub depth: Vec<u32>,
}

impl DomTree {
    /// Compute the dominator tree over `cfg`.
    pub fn new(cfg: &Cfg) -> DomTree {
        let n = cfg.len();
        let rpo_idx = cfg.rpo_index();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return DomTree { idom, depth: vec![] };
        }
        let entry = cfg.rpo[0];
        idom[entry.0 as usize] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_idx[a.0 as usize] > rpo_idx[b.0 as usize] {
                    a = idom[a.0 as usize].expect("processed");
                }
                while rpo_idx[b.0 as usize] > rpo_idx[a.0 as usize] {
                    b = idom[b.0 as usize].expect("processed");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.0 as usize] {
                    if idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // Entry's self-idom becomes None for the public API.
        idom[entry.0 as usize] = None;

        let mut depth = vec![0u32; n];
        for &b in &cfg.rpo {
            if let Some(d) = idom[b.0 as usize] {
                depth[b.0 as usize] = depth[d.0 as usize] + 1;
            }
        }
        DomTree { idom, depth }
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.0 as usize] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyir::builder::ModuleBuilder;
    use tinyir::{Ty, Value};

    #[test]
    fn diamond_dominators() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("d", vec![Ty::I64], Some(Ty::I64), |fb| {
            let out = fb.alloca(Ty::I64, 1);
            let c = fb.icmp(tinyir::ICmp::Slt, fb.arg(0), Value::i64(0));
            fb.if_then_else(
                c,
                |fb| fb.store(Value::i64(-1), out),
                |fb| fb.store(Value::i64(1), out),
            );
            let r = fb.load(out, Ty::I64);
            fb.ret(Some(r));
        });
        let m = mb.finish();
        let cfg = Cfg::new(&m.funcs[0]);
        let dt = DomTree::new(&cfg);
        let (e, t, f, j) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert_eq!(dt.idom[t.0 as usize], Some(e));
        assert_eq!(dt.idom[f.0 as usize], Some(e));
        // Join is dominated by entry, not by either branch arm.
        assert_eq!(dt.idom[j.0 as usize], Some(e));
        assert!(dt.dominates(e, j));
        assert!(!dt.dominates(t, j));
        assert!(dt.dominates(j, j));
        assert_eq!(dt.depth[e.0 as usize], 0);
        assert_eq!(dt.depth[j.0 as usize], 1);
    }

    #[test]
    fn loop_dominators() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        mb.define("l", vec![Ty::I64], None, |fb| {
            fb.for_loop(Value::i64(0), fb.arg(0), |_, _| {});
            fb.ret(None);
        });
        let m = mb.finish();
        let cfg = Cfg::new(&m.funcs[0]);
        let dt = DomTree::new(&cfg);
        // Blocks: 0=pre, 1=header, 2=body, 3=exit.
        assert_eq!(dt.idom[1], Some(BlockId(0)));
        assert_eq!(dt.idom[2], Some(BlockId(1)));
        assert_eq!(dt.idom[3], Some(BlockId(1)));
        assert!(dt.dominates(BlockId(1), BlockId(2)));
        assert!(!dt.dominates(BlockId(2), BlockId(3)));
    }
}
