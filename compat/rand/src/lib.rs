//! Offline, API-compatible subset of `rand` 0.8.
//!
//! The container this repository builds in has no crates.io access, so the
//! handful of `rand` APIs the workspace uses are vendored here. Fidelity
//! matters: campaigns are seeded and their archived results
//! (`docs/repro_output_n250.txt`, EXPERIMENTS.md) were produced with rand
//! 0.8's `SmallRng`, so this implements the same generator —
//! xoshiro256++ with SplitMix64 `seed_from_u64` — and the same Lemire
//! widening-multiply `gen_range` sampling, bit-for-bit.

/// Byte-level RNG core, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it over the full seed. The
    /// expansion function is generator-specific in rand 0.8 (xoshiro uses
    /// SplitMix64); implementors override accordingly.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let n = chunk.len();
            chunk.copy_from_slice(&z.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sampling within a range — the subset of `rand::distributions::uniform`
/// the workspace uses (`gen_range` over `Range` / `RangeInclusive` of
/// unsigned integers).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_impl {
    ($ty:ty, $wide:ty, $next:ident) => {
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty gen_range");
                let range = self.end.wrapping_sub(self.start);
                // Lemire widening-multiply rejection, exactly as rand 0.8's
                // `UniformInt::sample_single` computes its zone.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$next() as $ty;
                    let m = (v as $wide).wrapping_mul(range as $wide);
                    let lo = m as $ty;
                    let hi = (m >> <$ty>::BITS) as $ty;
                    if lo <= zone {
                        return self.start.wrapping_add(hi);
                    }
                }
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let range = end.wrapping_sub(start).wrapping_add(1);
                if range == 0 {
                    // Full-width range: every value is in range.
                    return rng.$next() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$next() as $ty;
                    let m = (v as $wide).wrapping_mul(range as $wide);
                    let lo = m as $ty;
                    let hi = (m >> <$ty>::BITS) as $ty;
                    if lo <= zone {
                        return start.wrapping_add(hi);
                    }
                }
            }
        }
    };
}

uniform_impl!(u32, u64, next_u32);
uniform_impl!(u64, u128, next_u64);
uniform_impl!(usize, u128, next_u64);

/// User-facing RNG methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// rand 0.8's `SmallRng` on 64-bit platforms: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            // Upper bits: the low bits of xoshiro have linear dependencies.
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            if seed.iter().all(|&b| b == 0) {
                return SmallRng::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                *w = u64::from_le_bytes(seed[i * 8..i * 8 + 8].try_into().unwrap());
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seed_from_u64_matches_rand08_xoshiro256pp() {
        // Reference values from rand 0.8.5's SmallRng (xoshiro256++,
        // SplitMix64 seeding) on x86_64.
        let mut r = SmallRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }

    #[test]
    fn gen_range_is_deterministic_and_in_bounds() {
        let mut r = SmallRng::seed_from_u64(0xCA2E);
        for _ in 0..10_000 {
            let a = r.gen_range(0u64..17);
            assert!(a < 17);
            let b = r.gen_range(1u64..=5);
            assert!((1..=5).contains(&b));
            let c = r.gen_range(0u32..64);
            assert!(c < 64);
        }
        let mut x = SmallRng::seed_from_u64(9);
        let mut y = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(x.gen_range(0u64..1000), y.gen_range(0u64..1000));
        }
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = SmallRng::seed_from_u64(3);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
