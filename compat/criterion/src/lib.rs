//! Offline, API-compatible subset of `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!` harness surface the
//! bench crate uses, backed by a plain wall-clock timer. Like real
//! criterion, when the binary is run without `--bench` (i.e. under
//! `cargo test`) each benchmark executes exactly once as a smoke test;
//! under `cargo bench` it runs `sample_size` timed samples and prints a
//! median per-iteration time.

use std::time::{Duration, Instant};

/// Mirror of `criterion::BatchSize` (sizing is irrelevant to this harness).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// True when this process was launched by `cargo bench` (which appends
/// `--bench`); false under `cargo test`, where benches run once.
fn is_bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

pub struct Criterion {
    sample_size: usize,
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100, bench_mode: is_bench_mode() }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be > 0");
        self.sample_size = n;
        self
    }

    /// Mirror of `Criterion::measurement_time`; sampling here is
    /// count-based, so the duration only caps how long one bench may run.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.to_string() }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.bench_mode { self.sample_size } else { 1 };
        let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0, bench_mode: self.bench_mode };
            f(&mut b);
            if b.iters > 0 {
                per_iter.push(b.elapsed / b.iters as u32);
            }
        }
        if self.bench_mode {
            per_iter.sort();
            let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or_default();
            println!("{id:<50} time: [{median:?}] ({} samples)", per_iter.len());
        } else {
            println!("{id}: ok (smoke run)");
        }
        self
    }
}

pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.c.bench_function(&full, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be > 0");
        self.c.sample_size = n;
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    elapsed: Duration,
    iters: u64,
    bench_mode: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // A fixed inner batch amortises timer overhead; one pass in test mode.
        let n: u64 = if self.bench_mode { 10 } else { 1 };
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += n;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let n: u64 = if self.bench_mode { 10 } else { 1 };
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += n;
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let n: u64 = if self.bench_mode { 10 } else { 1 };
        for _ in 0..n {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            self.elapsed += start.elapsed();
        }
        self.iters += n;
    }
}

/// Mirror of `criterion::black_box` (the std hint is stable now).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
