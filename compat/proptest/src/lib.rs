//! Offline, API-compatible subset of `proptest`.
//!
//! Implements the strategy combinators and the `proptest!` test macro that
//! the workspace's property tests use: `any`, integer ranges, `Just`,
//! tuples, `prop_map`, `prop_oneof!`, `collection::vec`, and the
//! `prop_assert*` family. Generation is seeded and deterministic; failing
//! cases are reported with their generated value but are **not shrunk**.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A boxed, type-erased strategy (the `prop_oneof!` arm type).
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    /// Mirror of `proptest::strategy::Strategy`, minus shrinking: a
    /// strategy is just a seeded generator for values of one type.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut SmallRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut SmallRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.gen_range(0..span) as i128) as $ty
                }
            }

            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut SmallRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + rng.gen_range(0..=span) as i128) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($S:ident $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Mirror of `proptest::arbitrary::any::<T>()` for primitive ints and
    /// bool: the full-range uniform strategy.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    pub struct Any<T>(PhantomData<T>);

    pub trait Arbitrary: Sized {
        fn sample(rng: &mut SmallRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::sample(rng)
        }
    }

    macro_rules! arb_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn sample(rng: &mut SmallRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn sample(rng: &mut SmallRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Mirror of `proptest::collection::vec`: a `Vec` whose length is drawn
    /// from `len` and whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { elem, len }
    }

    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Mirror of `proptest::test_runner::Config` — only the fields the
    /// workspace sets; construct with struct-update from `default()`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for API compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0 }
        }
    }

    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// A failed property: the message plus a debug dump of the input.
    #[derive(Clone, Debug)]
    pub struct TestError {
        pub message: String,
        pub input: String,
    }

    pub struct TestRunner {
        config: ProptestConfig,
        rng: SmallRng,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            // Deterministic seed: property tests reproduce across runs.
            TestRunner { config, rng: SmallRng::seed_from_u64(0x5EED_CA2E) }
        }

        pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), TestError>
        where
            S: Strategy,
            S::Value: std::fmt::Debug,
            F: Fn(S::Value) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let value = strategy.generate(&mut self.rng);
                let dump = format!("{value:?}");
                match test(value) {
                    Ok(()) => {}
                    Err(TestCaseError::Reject(_)) => continue,
                    Err(TestCaseError::Fail(msg)) => {
                        return Err(TestError {
                            message: format!("case {case}: {msg}"),
                            input: dump,
                        });
                    }
                }
            }
            Ok(())
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)*), l, r);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Mirror of the `proptest!` test-declaration macro: an optional
/// `#![proptest_config(..)]` followed by `#[test]` functions whose
/// arguments are drawn from strategies (`pat in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let strategy = ($($strat,)+);
            let outcome = runner.run(&strategy, |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(e) = outcome {
                panic!("proptest failed: {}\n  input: {}", e.message, e.input);
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(a in 1u8..8, b in 0u64..64, _c in any::<i8>()) {
            prop_assert!((1..8).contains(&a));
            prop_assert!(b < 64);
        }

        #[test]
        fn oneof_and_vec_compose(v in crate::collection::vec(
            prop_oneof![Just(1u32), Just(2u32), (5u32..9).prop_map(|x| x * 10)],
            1..12,
        )) {
            prop_assert!(!v.is_empty() && v.len() < 12);
            for x in v {
                prop_assert!(x == 1 || x == 2 || (50..90).contains(&x));
            }
        }
    }
}
