//! The persistent work-stealing pool behind [`par_apply`](crate).
//!
//! Worker threads are spawned once (on demand, up to the configured width)
//! and live for the process: a batch submission publishes a chunk-index job
//! under the pool mutex and wakes them, instead of paying a
//! `thread::scope` spawn/join round per call. Each participant owns a
//! deque seeded with a contiguous block of chunk indexes; it pops its own
//! work from the front and, when dry, steals from the *back* of a loaded
//! victim — so stragglers shed their coldest chunks and a slow suffix no
//! longer serializes the whole tail of a batch.
//!
//! The submitting caller is itself a participant (it owns the last deque),
//! which keeps the 1-thread configuration allocation-free of workers and
//! means `width` threads of compute need only `width - 1` pool threads.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Poison-tolerant lock: a panicking batch unwinds out of [`run_batch`]
/// while holding pool locks by design (the payload is rethrown to the
/// caller), so poison carries no information here.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A chunk runner with its lifetime erased; see the safety argument on
/// [`Batch::runner`].
type Runner = dyn Fn(usize) + Sync;

/// One published unit of pool work: run `runner(c)` for every chunk index
/// seeded into `deques`.
struct Batch {
    /// Borrow of the submitting caller's stack closure with the lifetime
    /// erased. Safe to dereference only while a chunk is held: holding a
    /// chunk keeps `remaining > 0`, which keeps the caller blocked inside
    /// [`run_batch`] (it retires the batch before returning), so the
    /// closure is alive. A worker that wakes late finds its deque empty
    /// and never touches the pointer.
    runner: *const Runner,
    /// One deque of chunk indexes per participant; participant `i` pops
    /// `deques[i]` from the front and steals from others' backs.
    deques: Arc<Vec<Mutex<VecDeque<usize>>>>,
    /// Chunks not yet *completed* (not merely claimed).
    remaining: Arc<AtomicUsize>,
    /// First panic payload out of any chunk, rethrown by the caller.
    panic: Arc<Mutex<Option<Box<dyn Any + Send>>>>,
}

// SAFETY: the raw `runner` pointer is only dereferenced under the batch
// liveness protocol documented on the field.
unsafe impl Send for Batch {}

impl Clone for Batch {
    fn clone(&self) -> Batch {
        Batch {
            runner: self.runner,
            deques: Arc::clone(&self.deques),
            remaining: Arc::clone(&self.remaining),
            panic: Arc::clone(&self.panic),
        }
    }
}

struct State {
    /// The batch currently open for participation, if any.
    batch: Option<Batch>,
    /// Bumped once per published batch so parked workers can tell a new
    /// batch from a spurious wake.
    seq: u64,
    /// Pool threads spawned so far (monotonic; workers never exit).
    spawned: usize,
}

struct Pool {
    state: Mutex<State>,
    /// Workers park here between batches.
    work_cv: Condvar,
    /// The submitting caller parks here until `remaining` hits zero.
    done_cv: Condvar,
    /// Serializes whole batches from concurrent top-level callers.
    submit: Mutex<()>,
    batches: AtomicU64,
    chunks: AtomicU64,
    steals: AtomicU64,
}

/// Lifetime counters of the process-wide pool, for telemetry and tests.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PoolStats {
    /// Pool threads spawned so far (excludes the submitting callers).
    pub workers: usize,
    /// Batches submitted.
    pub batches: u64,
    /// Chunks executed (by workers and callers alike).
    pub chunks: u64,
    /// Chunks that ran on a participant other than the deque they were
    /// seeded into.
    pub steals: u64,
}

/// Snapshot the pool's lifetime counters.
pub fn pool_stats() -> PoolStats {
    let pool = global();
    PoolStats {
        workers: lock(&pool.state).spawned,
        batches: pool.batches.load(Ordering::Relaxed),
        chunks: pool.chunks.load(Ordering::Relaxed),
        steals: pool.steals.load(Ordering::Relaxed),
    }
}

fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State { batch: None, seq: 0, spawned: 0 }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        submit: Mutex::new(()),
        batches: AtomicU64::new(0),
        chunks: AtomicU64::new(0),
        steals: AtomicU64::new(0),
    })
}

thread_local! {
    /// Set while this thread is executing pool chunks. A nested
    /// `par_apply` from inside a chunk must run inline: workers cannot
    /// submit to the pool they drain without deadlocking on `submit`.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True when called from inside a pool chunk (including the submitting
/// caller's own participation): parallel work must degrade to inline.
pub(crate) fn in_pool() -> bool {
    IN_POOL.with(|f| f.get())
}

fn worker_main(me: usize) {
    let pool = global();
    let mut seen = 0u64;
    loop {
        let batch = {
            let mut st = lock(&pool.state);
            loop {
                if st.seq != seen {
                    seen = st.seq;
                    if let Some(b) = &st.batch {
                        // Participate only when this batch seeded a deque
                        // for us (deque `me`; the caller owns the last).
                        if me + 1 < b.deques.len() {
                            break b.clone();
                        }
                    }
                }
                st = pool.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        IN_POOL.with(|f| f.set(true));
        run_chunks(pool, &batch, me);
        IN_POOL.with(|f| f.set(false));
    }
}

/// Drain chunks as participant `me`: own deque from the front, then steal
/// from the back of the nearest loaded victim.
fn run_chunks(pool: &Pool, batch: &Batch, me: usize) {
    let n = batch.deques.len();
    loop {
        let mut stolen = false;
        // Pop the own deque in its own statement: the guard must be dropped
        // before the steal scan. Folding both into one expression keeps the
        // own-deque guard (a statement-scoped temporary) alive across the
        // scan, and two participants stealing concurrently then hold their
        // own lock while waiting on each other's — an ABBA deadlock. No
        // participant may ever hold two deque locks at once.
        let own = lock(&batch.deques[me]).pop_front();
        let chunk = own.or_else(|| {
            (1..n).find_map(|d| {
                let c = lock(&batch.deques[(me + d) % n]).pop_back();
                stolen |= c.is_some();
                c
            })
        });
        let Some(c) = chunk else { return };
        pool.chunks.fetch_add(1, Ordering::Relaxed);
        if stolen {
            pool.steals.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: we hold chunk `c`, so `remaining > 0` and the submitting
        // caller is still inside `run_batch`; the closure is alive.
        let runner = unsafe { &*batch.runner };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| runner(c))) {
            lock(&batch.panic).get_or_insert(payload);
        }
        if batch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last chunk done: wake the caller. Taking the state lock
            // orders this notify after the caller's wait registration.
            let _st = lock(&pool.state);
            pool.done_cv.notify_all();
        }
    }
}

/// Run `runner(c)` for every chunk index in `0..chunks` across `width`
/// participants (`width - 1` pool workers plus the calling thread), and
/// return once all chunks completed. Panics from chunks are rethrown here
/// after the batch fully retires, so the pool stays usable.
pub(crate) fn run_batch(width: usize, chunks: usize, runner: &(dyn Fn(usize) + Sync)) {
    debug_assert!(width >= 2, "width <= 1 must take the inline path");
    let pool = global();
    let _token = lock(&pool.submit);
    pool.batches.fetch_add(1, Ordering::Relaxed);
    let width = width.min(chunks).max(1);
    // Seed each participant's deque with a contiguous block of chunk
    // indexes: owners walk their block in order (output-slot locality) and
    // idle participants steal a straggler's coldest (furthest) chunks.
    let deques: Arc<Vec<Mutex<VecDeque<usize>>>> = Arc::new(
        (0..width)
            .map(|w| Mutex::new((chunks * w / width..chunks * (w + 1) / width).collect()))
            .collect(),
    );
    let remaining = Arc::new(AtomicUsize::new(chunks));
    let panic_slot: Arc<Mutex<Option<Box<dyn Any + Send>>>> = Arc::new(Mutex::new(None));
    // SAFETY: lifetime erasure only; dereferences follow the liveness
    // protocol documented on `Batch::runner`.
    let runner: *const Runner =
        unsafe { std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), _>(runner) };
    let batch = Batch {
        runner,
        deques,
        remaining: Arc::clone(&remaining),
        panic: Arc::clone(&panic_slot),
    };
    {
        let mut st = lock(&pool.state);
        while st.spawned + 1 < width {
            let me = st.spawned;
            std::thread::Builder::new()
                .name(format!("care-pool-{me}"))
                .spawn(move || worker_main(me))
                .expect("spawn pool worker");
            st.spawned += 1;
        }
        st.batch = Some(batch.clone());
        st.seq += 1;
        pool.work_cv.notify_all();
    }
    // The caller participates as the last deque's owner.
    IN_POOL.with(|f| f.set(true));
    run_chunks(pool, &batch, width - 1);
    IN_POOL.with(|f| f.set(false));
    // Wait out stragglers, then retire the batch *before* unwinding: no
    // worker may observe the runner pointer past this function's return.
    let mut st = lock(&pool.state);
    while remaining.load(Ordering::Acquire) != 0 {
        st = pool.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    st.batch = None;
    drop(st);
    let payload = lock(&panic_slot).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}
