//! Offline, API-compatible subset of `rayon`.
//!
//! Implements the parallel-iterator surface the workspace actually uses
//! (`into_par_iter().map/filter_map().collect()`) on top of a persistent
//! work-stealing pool (see [`pool`]): long-lived worker threads with
//! per-worker chunk deques and back-stealing, instead of spawning and
//! joining fresh threads on every call. Output order is preserved, so
//! seeded campaigns stay deterministic regardless of thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

mod pool;

pub use pool::{pool_stats, PoolStats};

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Process-wide width override installed by [`set_threads_override`] /
/// [`with_threads`]; `0` means "no override".
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pin the pool width programmatically, taking precedence over
/// `CARE_THREADS`. `None` removes the override. This is the race-free
/// replacement for mutating the environment at runtime: the env variable
/// is parsed once and cached, so `set_var` after startup has no effect.
pub fn set_threads_override(threads: Option<usize>) {
    THREADS_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// Run `f` with the pool width pinned to `threads`, restoring the previous
/// override afterwards (also on panic). Callers are serialized on a global
/// lock so two `with_threads` scopes never observe each other's widths;
/// the lock is poison-tolerant because a panicking scope still restores.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    static SCOPE: Mutex<()> = Mutex::new(());
    let _guard = SCOPE.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREADS_OVERRIDE.store(self.0, Ordering::SeqCst);
        }
    }
    let _restore = Restore(THREADS_OVERRIDE.swap(threads.max(1), Ordering::SeqCst));
    f()
}

/// Parse a `CARE_THREADS` value: a positive integer, else `None`.
fn parse_threads(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&t| t >= 1)
}

/// The `CARE_THREADS` environment override, parsed once per process.
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| std::env::var("CARE_THREADS").ok().and_then(|v| parse_threads(&v)))
}

/// Configured pool width: the programmatic override when set, else the
/// `CARE_THREADS` environment override when it parses to a positive
/// integer, otherwise the machine's available parallelism.
fn configured_threads() -> usize {
    match THREADS_OVERRIDE.load(Ordering::SeqCst) {
        0 => env_threads().unwrap_or_else(|| {
            std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1)
        }),
        t => t,
    }
}

/// Mirror of `rayon::current_num_threads`: the pool width parallel work
/// fans out to (before capping at the item count).
pub fn current_num_threads() -> usize {
    configured_threads()
}

/// Number of worker threads to use for `n` items.
fn worker_count(n: usize) -> usize {
    configured_threads().min(n)
}

/// How many chunks each worker should see on average: enough slack for
/// dynamic load balancing (item costs vary wildly in fault campaigns)
/// without paying per-item synchronisation.
const CHUNKS_PER_THREAD: usize = 8;

/// Apply `f` to every item on the persistent pool, preserving item order.
///
/// Work is split into contiguous chunks (grain derived from item count /
/// thread count) seeded across per-participant deques; idle participants
/// steal from the back of loaded ones, so one expensive straggler chunk
/// no longer serializes the batch tail. Outputs land in per-chunk slots
/// and are concatenated in chunk order, so the result is order-preserving
/// and deterministic regardless of thread schedule. Nested calls (from
/// inside a pool chunk) degrade to inline execution.
fn par_apply<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = worker_count(n);
    if threads <= 1 || pool::in_pool() {
        return items.into_iter().map(f).collect();
    }
    let grain = n.div_ceil(threads * CHUNKS_PER_THREAD).max(1);
    let mut items = items;
    let mut chunks: Vec<Mutex<Vec<T>>> = Vec::with_capacity(n.div_ceil(grain));
    while !items.is_empty() {
        let rest = items.split_off(grain.min(items.len()));
        chunks.push(Mutex::new(std::mem::replace(&mut items, rest)));
    }
    if chunks.len() <= 1 {
        return chunks
            .into_iter()
            .flat_map(|c| c.into_inner().unwrap())
            .map(f)
            .collect();
    }
    let out: Vec<Mutex<Vec<R>>> = (0..chunks.len()).map(|_| Mutex::new(Vec::new())).collect();
    let run_chunk = |c: usize| {
        let chunk = std::mem::take(&mut *chunks[c].lock().unwrap());
        let results: Vec<R> = chunk.into_iter().map(&f).collect();
        *out[c].lock().unwrap() = results;
    };
    pool::run_batch(threads, chunks.len(), &run_chunk);
    out.into_iter().flat_map(|s| s.into_inner().unwrap()).collect()
}

/// Mirror of `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// Mirror of `rayon::iter::ParallelIterator`, eager rather than lazy: each
/// adapter runs its closure across the pool and yields a materialised,
/// order-preserving `Vec`.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Produce all items (running any pending parallel work).
    fn items(self) -> Vec<Self::Item>;

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> Option<R> + Sync,
    {
        FilterMap { base: self, f }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        par_apply(self.items(), f);
    }

    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.items().into_iter().collect()
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.items().into_iter().sum()
    }

    fn count(self) -> usize {
        self.items().len()
    }
}

/// Base parallel iterator over already-materialised items.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn items(self) -> Vec<T> {
        self.items
    }
}

pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;
    fn items(self) -> Vec<R> {
        par_apply(self.base.items(), self.f)
    }
}

pub struct FilterMap<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> Option<R> + Sync,
{
    type Item = R;
    fn items(self) -> Vec<R> {
        par_apply(self.base.items(), self.f)
            .into_iter()
            .flatten()
            .collect()
    }
}

macro_rules! range_into_par {
    ($($ty:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$ty> {
            type Item = $ty;
            type Iter = VecIter<$ty>;
            fn into_par_iter(self) -> VecIter<$ty> {
                VecIter { items: self.collect() }
            }
        }
    )*};
}

range_into_par!(u32, u64, usize);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_dispatch_preserves_order_at_awkward_sizes() {
        // Sizes around chunk boundaries: empty, single, fewer than the
        // thread count, prime, and a grain-multiple neighbourhood.
        for n in [0usize, 1, 3, 97, 255, 256, 257, 1009] {
            let out: Vec<usize> = (0..n).into_par_iter().map(|i| i.wrapping_mul(31)).collect();
            assert_eq!(out, (0..n).map(|i| i.wrapping_mul(31)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn uneven_item_costs_stay_deterministic() {
        // Per-item runtime varies by orders of magnitude; scheduling must
        // not leak into output order or content.
        let work = |i: usize| -> usize {
            let mut acc = i;
            for _ in 0..(i % 17) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let a: Vec<usize> = (0..500usize).into_par_iter().map(work).collect();
        let b: Vec<usize> = (0..500usize).map(work).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn care_threads_values_parse_like_the_env_override() {
        // The environment is read once at startup and cached, so tests
        // exercise the parser directly instead of racing `set_var` against
        // concurrently running parallel work (the old version of this test
        // did exactly that).
        assert_eq!(crate::parse_threads("2"), Some(2));
        assert_eq!(crate::parse_threads(" 16 "), Some(16));
        assert_eq!(crate::parse_threads("0"), None);
        assert_eq!(crate::parse_threads("not-a-number"), None);
        assert_eq!(crate::parse_threads(""), None);
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn with_threads_pins_and_restores_the_width() {
        let before = crate::current_num_threads();
        let (inside, out) = crate::with_threads(2, || {
            let out: Vec<usize> = (0..64usize).into_par_iter().map(|i| i + 1).collect();
            (crate::current_num_threads(), out)
        });
        assert_eq!(inside, 2);
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
        assert_eq!(crate::current_num_threads(), before);
    }

    #[test]
    fn pool_workers_persist_across_batches() {
        crate::with_threads(4, || {
            for _ in 0..20 {
                let out: Vec<usize> = (0..200usize).into_par_iter().map(|i| i ^ 5).collect();
                assert_eq!(out.len(), 200);
            }
            // Twenty 4-wide batches need at most 3 pool threads, ever —
            // the per-call `thread::scope` version would have spawned 80.
            assert!(
                crate::pool_stats().workers <= 3,
                "pool respawned workers: {:?}",
                crate::pool_stats()
            );
        });
    }

    #[test]
    fn nested_parallelism_degrades_to_inline() {
        let out: Vec<usize> = crate::with_threads(4, || {
            (0..64usize)
                .into_par_iter()
                .map(|i| (0..8usize).into_par_iter().map(move |j| i * 8 + j).sum())
                .collect()
        });
        let expect: Vec<usize> = (0..64).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn concurrent_callers_serialize_without_corruption() {
        crate::with_threads(3, || {
            std::thread::scope(|scope| {
                for t in 0..4usize {
                    scope.spawn(move || {
                        let out: Vec<usize> =
                            (0..300usize).into_par_iter().map(|i| i + t).collect();
                        assert_eq!(out, (0..300).map(|i| i + t).collect::<Vec<_>>());
                    });
                }
            });
        });
    }

    #[test]
    fn panics_propagate_and_the_pool_survives() {
        crate::with_threads(4, || {
            let r = std::panic::catch_unwind(|| {
                (0..100usize)
                    .into_par_iter()
                    .map(|i| if i == 63 { panic!("chunk 63 bad") } else { i })
                    .collect::<Vec<_>>()
            });
            assert!(r.is_err(), "worker panic must reach the caller");
            // The pool must still schedule work after a panicking batch.
            let out: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * 3).collect();
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        });
    }

    #[test]
    fn steal_heavy_batches_never_deadlock() {
        // Regression canary for an ABBA deadlock in the steal scan: a
        // participant used to hold its own (empty) deque's lock while
        // probing victims, so two participants scanning concurrently could
        // wait on each other forever. Tiny batches at full width maximise
        // the number of simultaneous empty-deque scans.
        crate::with_threads(4, || {
            for round in 0..300usize {
                let out: Vec<usize> =
                    (0..8usize).into_par_iter().map(|i| i.wrapping_add(round)).collect();
                assert_eq!(out, (0..8usize).map(|i| i.wrapping_add(round)).collect::<Vec<_>>());
            }
        });
    }

    #[test]
    fn filter_map_preserves_order_and_drops() {
        let out: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter_map(|i| (i % 3 == 0).then_some(i))
            .collect();
        assert_eq!(out, (0..100).filter(|i| i % 3 == 0).collect::<Vec<_>>());
    }
}
