//! Offline, API-compatible subset of `rayon`.
//!
//! Implements the parallel-iterator surface the workspace actually uses
//! (`into_par_iter().map/filter_map().collect()`) on top of
//! `std::thread::scope` with a shared atomic work index. Output order is
//! preserved, so seeded campaigns stay deterministic regardless of thread
//! count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Configured pool width: the `CARE_THREADS` environment override when it
/// parses to a positive integer, otherwise the machine's available
/// parallelism.
fn configured_threads() -> usize {
    std::env::var("CARE_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1)
        })
}

/// Mirror of `rayon::current_num_threads`: the pool width parallel work
/// fans out to (before capping at the item count).
pub fn current_num_threads() -> usize {
    configured_threads()
}

/// Number of worker threads to use for `n` items.
fn worker_count(n: usize) -> usize {
    configured_threads().min(n)
}

/// How many chunks each worker should see on average: enough slack for
/// dynamic load balancing (item costs vary wildly in fault campaigns)
/// without paying per-item synchronisation.
const CHUNKS_PER_THREAD: usize = 8;

/// Apply `f` to every item on a worker pool, preserving item order.
///
/// Work is taken in contiguous chunks (grain derived from item count /
/// thread count) claimed off a single atomic cursor: two lock round-trips
/// per *chunk* instead of the former two per *item*. Outputs land in
/// per-chunk slots and are concatenated in chunk order, so the result is
/// order-preserving and deterministic regardless of thread schedule.
fn par_apply<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = worker_count(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let grain = n.div_ceil(threads * CHUNKS_PER_THREAD).max(1);
    let mut items = items;
    let mut chunks: Vec<Mutex<Vec<T>>> = Vec::with_capacity(n.div_ceil(grain));
    while !items.is_empty() {
        let rest = items.split_off(grain.min(items.len()));
        chunks.push(Mutex::new(std::mem::replace(&mut items, rest)));
    }
    let out: Vec<Mutex<Vec<R>>> = (0..chunks.len()).map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= chunks.len() {
                    break;
                }
                let chunk = std::mem::take(&mut *chunks[c].lock().unwrap());
                let results: Vec<R> = chunk.into_iter().map(&f).collect();
                *out[c].lock().unwrap() = results;
            });
        }
    });
    out.into_iter().flat_map(|s| s.into_inner().unwrap()).collect()
}

/// Mirror of `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// Mirror of `rayon::iter::ParallelIterator`, eager rather than lazy: each
/// adapter runs its closure across the pool and yields a materialised,
/// order-preserving `Vec`.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Produce all items (running any pending parallel work).
    fn items(self) -> Vec<Self::Item>;

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> Option<R> + Sync,
    {
        FilterMap { base: self, f }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        par_apply(self.items(), f);
    }

    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.items().into_iter().collect()
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.items().into_iter().sum()
    }

    fn count(self) -> usize {
        self.items().len()
    }
}

/// Base parallel iterator over already-materialised items.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn items(self) -> Vec<T> {
        self.items
    }
}

pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;
    fn items(self) -> Vec<R> {
        par_apply(self.base.items(), self.f)
    }
}

pub struct FilterMap<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> Option<R> + Sync,
{
    type Item = R;
    fn items(self) -> Vec<R> {
        par_apply(self.base.items(), self.f)
            .into_iter()
            .flatten()
            .collect()
    }
}

macro_rules! range_into_par {
    ($($ty:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$ty> {
            type Item = $ty;
            type Iter = VecIter<$ty>;
            fn into_par_iter(self) -> VecIter<$ty> {
                VecIter { items: self.collect() }
            }
        }
    )*};
}

range_into_par!(u32, u64, usize);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_dispatch_preserves_order_at_awkward_sizes() {
        // Sizes around chunk boundaries: empty, single, fewer than the
        // thread count, prime, and a grain-multiple neighbourhood.
        for n in [0usize, 1, 3, 97, 255, 256, 257, 1009] {
            let out: Vec<usize> = (0..n).into_par_iter().map(|i| i.wrapping_mul(31)).collect();
            assert_eq!(out, (0..n).map(|i| i.wrapping_mul(31)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn uneven_item_costs_stay_deterministic() {
        // Per-item runtime varies by orders of magnitude; scheduling must
        // not leak into output order or content.
        let work = |i: usize| -> usize {
            let mut acc = i;
            for _ in 0..(i % 17) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let a: Vec<usize> = (0..500usize).into_par_iter().map(work).collect();
        let b: Vec<usize> = (0..500usize).map(work).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn care_threads_env_overrides_pool_width() {
        // Runs in the same process as the other tests, but they only
        // assert order/content — which hold at any pool width.
        std::env::set_var("CARE_THREADS", "2");
        assert_eq!(crate::current_num_threads(), 2);
        let out: Vec<usize> = (0..64usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
        std::env::set_var("CARE_THREADS", "not-a-number");
        assert!(crate::current_num_threads() >= 1);
        std::env::remove_var("CARE_THREADS");
    }

    #[test]
    fn filter_map_preserves_order_and_drops() {
        let out: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter_map(|i| (i % 3 == 0).then_some(i))
            .collect();
        assert_eq!(out, (0..100).filter(|i| i % 3 == 0).collect::<Vec<_>>());
    }
}
