//! Offline, API-compatible subset of `rayon`.
//!
//! Implements the parallel-iterator surface the workspace actually uses
//! (`into_par_iter().map/filter_map().collect()`) on top of
//! `std::thread::scope` with a shared atomic work index. Output order is
//! preserved, so seeded campaigns stay deterministic regardless of thread
//! count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Number of worker threads to use for `n` items.
fn worker_count(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
        .min(n)
}

/// Apply `f` to every item on a worker pool, preserving item order.
fn par_apply<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = worker_count(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().unwrap().take().unwrap();
                let out = f(item);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().unwrap())
        .collect()
}

/// Mirror of `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// Mirror of `rayon::iter::ParallelIterator`, eager rather than lazy: each
/// adapter runs its closure across the pool and yields a materialised,
/// order-preserving `Vec`.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Produce all items (running any pending parallel work).
    fn items(self) -> Vec<Self::Item>;

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> Option<R> + Sync,
    {
        FilterMap { base: self, f }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        par_apply(self.items(), f);
    }

    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.items().into_iter().collect()
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.items().into_iter().sum()
    }

    fn count(self) -> usize {
        self.items().len()
    }
}

/// Base parallel iterator over already-materialised items.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn items(self) -> Vec<T> {
        self.items
    }
}

pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;
    fn items(self) -> Vec<R> {
        par_apply(self.base.items(), self.f)
    }
}

pub struct FilterMap<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> Option<R> + Sync,
{
    type Item = R;
    fn items(self) -> Vec<R> {
        par_apply(self.base.items(), self.f)
            .into_iter()
            .flatten()
            .collect()
    }
}

macro_rules! range_into_par {
    ($($ty:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$ty> {
            type Item = $ty;
            type Iter = VecIter<$ty>;
            fn into_par_iter(self) -> VecIter<$ty> {
                VecIter { items: self.collect() }
            }
        }
    )*};
}

range_into_par!(u32, u64, usize);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_preserves_order_and_drops() {
        let out: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter_map(|i| (i % 3 == 0).then_some(i))
            .collect();
        assert_eq!(out, (0..100).filter(|i| i % 3 == 0).collect::<Vec<_>>());
    }
}
