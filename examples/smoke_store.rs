//! CI smoke test: the content-addressed record store, kill + resume in
//! one process.
//!
//! Runs a CARE coverage campaign cold through a fresh store, plants a
//! copy of its log truncated at a mid-run record boundary (the on-disk
//! image of a killed process), resumes from it, and asserts the resumed
//! report is bit-identical to the uninterrupted run. A final warm re-run
//! must execute zero residual injections and leave the log untouched.
//! Exits nonzero (assert) if any of that regresses.
//!
//! ```sh
//! cargo run --release --example smoke_store
//! ```

use carestore::{campaign_key, Store};
use faultsim::{Campaign, CampaignConfig, FaultModel, JobControl};
use opt::OptLevel;
use telemetry::NoTelemetry;

fn main() {
    let injections = 60;
    let w = workloads::hpccg::build(3, 2);
    let app = care::compile(&w.module, OptLevel::O1);
    let key = campaign_key(&w.module, w.entry, &w.args, &w.outputs, "O1");
    let campaign = Campaign::prepare(&w, app, vec![]);
    let cfg = CampaignConfig {
        injections,
        model: FaultModel::SingleBit,
        seed: 0x5300CE,
        evaluate_care: true,
        app_only: true,
        ..CampaignConfig::default()
    };

    let base = std::env::temp_dir().join(format!("care-smoke-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cold_store = Store::open(base.join("cold")).expect("open cold store");
    let resume_store = Store::open(base.join("resume")).expect("open resume store");

    // The uninterrupted run, persisting as it goes.
    let cold = cold_store
        .run_campaign(&key, &campaign, &cfg, &NoTelemetry, &JobControl::new())
        .expect("cold run");
    assert_eq!(cold.stats.misses, injections as u64);
    assert!(cold.report.care_covered > 0, "smoke campaign must cover at least one fault");

    // Simulate a kill halfway: keep the log's header and the first half of
    // its record lines, drop the rest (including the completion marker).
    let log = std::fs::read_to_string(cold_store.log_path(&key)).expect("cold log");
    let total_records = log.lines().filter(|l| l.contains("\"kind\":\"record\"")).count();
    let keep = total_records / 2;
    let mut truncated = String::new();
    let mut kept = 0;
    for line in log.lines() {
        if line.contains("\"kind\":\"record\"") {
            if kept == keep {
                break;
            }
            kept += 1;
        } else if line.contains("\"kind\":\"complete\"") {
            break;
        }
        truncated.push_str(line);
        truncated.push('\n');
    }
    std::fs::write(resume_store.log_path(&key), truncated).expect("plant kill image");

    // Resume: reuse the surviving half, execute only the residual.
    let resumed = resume_store
        .run_campaign(&key, &campaign, &cfg, &NoTelemetry, &JobControl::new())
        .expect("resumed run");
    assert_eq!(resumed.stats.hits, keep as u64, "resume must reuse every surviving record");
    assert_eq!(resumed.stats.misses, (injections - keep) as u64);
    assert_eq!(resumed.report, cold.report, "resumed report diverged from the full run");

    // Warm: everything is stored now; nothing executes, nothing is written.
    let log_before = std::fs::read(resume_store.log_path(&key)).expect("resumed log");
    let warm = resume_store
        .run_campaign(&key, &campaign, &cfg, &NoTelemetry, &JobControl::new())
        .expect("warm run");
    assert_eq!(warm.stats.misses, 0, "warm run must execute no residual injections");
    assert_eq!(warm.report, cold.report, "warm report diverged from the full run");
    assert_eq!(
        std::fs::read(resume_store.log_path(&key)).expect("log still there"),
        log_before,
        "a fully-warm run must not append to the log"
    );

    std::fs::remove_dir_all(&base).expect("cleanup");
    println!(
        "smoke_store: killed at {keep}/{total_records} records, resumed {} residual \
         injections bit-identical to the full run; warm re-run executed 0",
        resumed.stats.misses,
    );
}
