//! CI smoke test: a 30-injection CARE coverage campaign on HPCCG.
//!
//! Small enough to finish in seconds on a cold runner, but end-to-end real:
//! compile at O1, run Armor, fork 30 snapshot processes, inject single-bit
//! flips, classify every outcome, and evaluate CARE recovery on the faults
//! that trap. Exits nonzero (assert) if the pipeline stops covering faults —
//! the one regression a unit suite can miss, because it needs the compiler,
//! the interpreter fast path, the campaign engine and Safeguard all working
//! against each other.
//!
//! ```sh
//! cargo run --release --example smoke_campaign
//! ```

use faultsim::{Campaign, CampaignConfig, FaultModel};
use opt::OptLevel;

fn main() {
    let w = workloads::hpccg::default();
    let app = care::compile(&w.module, OptLevel::O1);
    let campaign = Campaign::prepare(&w, app, vec![]);
    let r = campaign.run(&CampaignConfig {
        injections: 30,
        model: FaultModel::SingleBit,
        evaluate_care: true,
        app_only: true,
        seed: 0x5300CE,
        ..CampaignConfig::default()
    });
    println!(
        "smoke campaign: 30 injections on HPCCG -> {} benign, {} soft, {} sdc, {} hang; \
         CARE evaluated {}, covered {}",
        r.benign, r.soft_failure, r.sdc, r.hang, r.care_evaluated, r.care_covered
    );
    assert_eq!(
        r.benign + r.soft_failure + r.sdc + r.hang,
        30,
        "every injection must be classified"
    );
    assert!(
        r.care_evaluated > 0,
        "no injection trapped — the fault model or injection siting regressed"
    );
    assert!(
        r.care_covered > 0,
        "CARE recovered zero trapped faults — the recovery pipeline regressed"
    );
    println!("smoke campaign OK");
}
