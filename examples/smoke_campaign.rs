//! CI smoke test: a 30-injection CARE coverage campaign on HPCCG, run under
//! BOTH campaign schedulers.
//!
//! Small enough to finish in seconds on a cold runner, but end-to-end real:
//! compile at O1, run Armor, inject 30 single-bit flips, classify every
//! outcome, and evaluate CARE recovery on the faults that trap. The campaign
//! runs once under the per-injection engine (fork at the breakpoint, every
//! worker replays its own prefix) and once under the snapshot-trellis
//! scheduler (one shared instrumented cursor pass, CoW forks at the pending
//! injection points), and the two must agree record for record — the
//! equivalence the trellis optimisation promises. The trellis campaign is
//! then repeated at 1 and 4 pool threads, which must also agree bit for
//! bit (the sharded cursor pass and the work-stealing pool are pure
//! wall-clock optimisations). Exits nonzero (assert) if
//! the pipeline stops covering faults or the schedulers diverge — the
//! regressions a unit suite can miss, because they need the compiler, the
//! interpreter fast path, the campaign engine and Safeguard all working
//! against each other.
//!
//! ```sh
//! cargo run --release --example smoke_campaign
//! cargo run --release --example smoke_campaign -- --engine compiled
//! ```
//!
//! `--engine compiled` (or `CARE_ENGINE=compiled`) runs the same campaign
//! on the direct-threaded compiled backend, which must agree with the
//! interpreter record for record as well.

use faultsim::{Campaign, CampaignConfig, EngineKind, FaultModel, Scheduler};
use opt::OptLevel;

fn main() {
    let mut engine = EngineKind::Interp;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--engine" => {
                engine = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--engine interp|compiled");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    let w = workloads::hpccg::default();
    let app = care::compile(&w.module, OptLevel::O1);
    let campaign = Campaign::prepare(&w, app, vec![]);
    let cfg = |scheduler: Scheduler| CampaignConfig {
        injections: 30,
        model: FaultModel::SingleBit,
        evaluate_care: true,
        app_only: true,
        seed: 0x5300CE,
        keep_records: true,
        scheduler,
        engine,
        ..CampaignConfig::default()
    };
    let r = campaign.run(&cfg(Scheduler::Trellis));
    let legacy = campaign.run(&cfg(Scheduler::PerInjection));
    println!(
        "smoke campaign [{}]: 30 injections on HPCCG -> {} benign, {} soft, {} sdc, {} hang; \
         CARE evaluated {}, covered {}",
        engine.name(), r.benign, r.soft_failure, r.sdc, r.hang, r.care_evaluated, r.care_covered
    );
    println!(
        "trellis: {} snapshots off one cursor pass, {} prefix + {} suffix + {} CARE steps \
         (legacy executed {} steps)",
        r.trellis_snapshots,
        r.steps_prefix,
        r.steps_suffix,
        r.steps_care,
        legacy.simulated_steps,
    );
    assert_eq!(
        r.benign + r.soft_failure + r.sdc + r.hang,
        30,
        "every injection must be classified"
    );
    assert!(
        r.care_evaluated > 0,
        "no injection trapped — the fault model or injection siting regressed"
    );
    assert!(
        r.care_covered > 0,
        "CARE recovered zero trapped faults — the recovery pipeline regressed"
    );
    assert_eq!(
        r.records, legacy.records,
        "trellis and per-injection schedulers must produce identical records"
    );
    assert_eq!(
        (legacy.benign, legacy.soft_failure, legacy.sdc, legacy.hang),
        (r.benign, r.soft_failure, r.sdc, r.hang),
        "aggregate outcomes diverged between schedulers"
    );
    assert!(
        r.simulated_steps < legacy.simulated_steps,
        "the shared cursor pass must execute fewer instructions than \
         per-injection prefix replay ({} vs {})",
        r.simulated_steps,
        legacy.simulated_steps
    );
    // Thread-count independence: the sharded cursor pass and the
    // work-stealing pool must be invisible in the records — a 1-thread run
    // (one cursor, inline suffixes) and a 4-thread run (sharded cursors,
    // pooled suffixes) agree bit for bit. CI additionally runs this whole
    // example under CARE_THREADS=4.
    let narrow = rayon::with_threads(1, || campaign.run(&cfg(Scheduler::Trellis)));
    let wide = rayon::with_threads(4, || campaign.run(&cfg(Scheduler::Trellis)));
    assert_eq!(narrow.cursor_shards, 1, "1 thread must run a single cursor");
    assert!(
        wide.cursor_shards > 1,
        "4-thread trellis never sharded the cursor pass"
    );
    assert_eq!(
        narrow.records, wide.records,
        "records must be identical at 1 and 4 threads"
    );
    println!(
        "threads: 1-thread ({} shard) and 4-thread ({} shards) records identical",
        narrow.cursor_shards, wide.cursor_shards
    );
    println!("smoke campaign OK (both schedulers agree)");
}
