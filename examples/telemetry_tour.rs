//! Tour of the telemetry subsystem: attach a [`telemetry::Recorder`] to a
//! small HPCCG coverage campaign, print the human-readable summary table,
//! write the versioned JSONL event stream and re-validate it against the
//! schema — then spot-check the headline measurement (the paper's §6
//! claim that recovery time is dominated by *preparation*, not kernel
//! execution).
//!
//! ```text
//! cargo run --release --example telemetry_tour [OUT.jsonl]
//! ```
//!
//! CI runs this as the end-to-end smoke test of the telemetry stack.

use faultsim::{Campaign, CampaignConfig, FaultModel};
use opt::OptLevel;
use telemetry::Recorder;

fn main() {
    let out = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("care_telemetry_tour.jsonl"));

    // 1. A small but real §5-style campaign: HPCCG at -O1, CARE evaluated
    //    on every SIGSEGV injection.
    let w = workloads::hpccg::build(3, 2);
    let app = care::compile(&w.module, OptLevel::O1);
    let campaign = Campaign::prepare(&w, app, vec![]);

    // 2. Attach a recorder. `run_with_hooks` is generic over the hook sink:
    //    passing `&telemetry::NoTelemetry` (what plain `run` does) compiles
    //    every instrumentation site out of the binary; passing a live
    //    `&Recorder` streams counters, histograms and events into
    //    per-thread shards with no cross-worker contention.
    let rec = Recorder::new();
    let report = campaign.run_with_hooks(
        &CampaignConfig {
            injections: 120,
            model: FaultModel::SingleBit,
            seed: 0xCA2E,
            evaluate_care: true,
            app_only: true,
            ..CampaignConfig::default()
        },
        &rec,
    );
    println!(
        "campaign: {} classified, {} CARE-evaluated, {} covered ({:.1}% coverage)",
        report.total(),
        report.care_evaluated,
        report.care_covered,
        100.0 * report.coverage(),
    );

    // 3. Drain the shards into one merged report and show the summary.
    let tel = rec.drain();
    println!("{}", tel.summary_table());

    // 4. Sinks: versioned JSONL out, schema validation back in.
    let jsonl = tel.to_jsonl();
    let counts = telemetry::validate_jsonl(&jsonl).expect("JSONL validates");
    std::fs::write(&out, &jsonl).expect("write JSONL");
    println!("wrote {} lines to {} ({counts:?})", jsonl.lines().count(), out.display());

    // 5. The headline number: measured preparation share of each recovery.
    let prep = tel
        .hists
        .get("recovery.prep_bp")
        .expect("campaign recovered at least once");
    let mean = prep.mean() / 10_000.0;
    println!(
        "recovery preparation fraction: mean {:.2}% (min {:.2}%, {} activations)",
        100.0 * mean,
        prep.min() as f64 / 100.0,
        prep.count(),
    );
    assert!(
        mean > 0.95,
        "measured preparation fraction {mean:.4} contradicts the paper's >98% claim"
    );

    // 6. TLB effectiveness of the interpreter's software address cache.
    let ctr = |n: &str| tel.counters.get(n).copied().unwrap_or(0);
    let accesses = ctr("tlb.loads") + ctr("tlb.stores");
    let misses = ctr("tlb.read_misses") + ctr("tlb.write_misses");
    if accesses > 0 {
        println!(
            "software TLB: {accesses} accesses, {misses} misses ({:.4}% hit rate)",
            100.0 * (accesses - misses) as f64 / accesses as f64
        );
    }
}
