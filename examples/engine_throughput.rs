//! Raw execution-engine throughput: run each workload fault-free on the
//! interpreter fast loop and on the compiled direct-threaded backend, and
//! print simulated instructions per second plus the ratio.
//!
//! This is the engine-only view of the `BENCH_campaign.json` speedup (no
//! campaign machinery, no injection forks — just `ExecutionEngine::run` on a
//! CoW-forked started process).
//!
//! ```sh
//! cargo run --release --example engine_throughput
//! ```

use simx::{CompiledEngine, ExecutionEngine, InterpEngine, RunExit};
use std::time::Instant;

fn main() {
    for w in workloads::all() {
        let app = care::compile(&w.module, opt::OptLevel::O1);
        let mut template = simx::Process::new(app.machine.clone(), vec![]);
        template.start(w.entry, &w.args);
        let compiled = CompiledEngine::for_image(&template.image);
        let time = |engine: &dyn ExecutionEngine| -> (u64, f64) {
            // One warmup, then best-of-3 timed runs.
            let mut steps = 0;
            let mut best = f64::INFINITY;
            for i in 0..4 {
                let mut p = template.clone();
                let t0 = Instant::now();
                match engine.run(&mut p) {
                    RunExit::Done(_) => {}
                    other => panic!("fault-free run failed: {other:?}"),
                }
                let dt = t0.elapsed().as_secs_f64();
                steps = p.steps;
                if i > 0 {
                    best = best.min(dt);
                }
            }
            (steps, best)
        };
        let (steps, ti) = time(&InterpEngine);
        let (steps_c, tc) = time(&compiled);
        assert_eq!(steps, steps_c, "step counts must agree");
        println!(
            "{:8} {:>12} steps  interp {:>7.1} M/s  compiled {:>7.1} M/s  ratio {:.2}x",
            w.name,
            steps,
            steps as f64 / ti / 1e6,
            steps as f64 / tc / 1e6,
            ti / tc
        );
    }
}
