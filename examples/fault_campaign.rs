//! A miniature §2-style fault-injection study over all five workloads:
//! outcome classification (Table 2), symptom breakdown (Table 3) and
//! manifestation latency (Table 4), printed side by side.
//!
//! ```sh
//! cargo run --release --example fault_campaign -- 200
//! ```

use faultsim::{Campaign, CampaignConfig, FaultModel};
use opt::OptLevel;

fn main() {
    let injections: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    println!("{injections} injections per workload (single-bit flips)\n");
    println!(
        "{:>8}  {:>6} {:>5} {:>4} {:>4} | {:>7} {:>6} {:>7} {:>5} | {:>6} {:>6}",
        "workload",
        "benign",
        "soft",
        "sdc",
        "hang",
        "SIGSEGV",
        "SIGBUS",
        "SIGABRT",
        "other",
        "<=10",
        "<=50"
    );
    for w in workloads::all() {
        let app = care::compile(&w.module, OptLevel::O0);
        let c = Campaign::prepare(&w, app, vec![]);
        let r = c.run(&CampaignConfig {
            injections,
            model: FaultModel::SingleBit,
            seed: 0x5EED,
            ..CampaignConfig::default()
        });
        println!(
            "{:>8}  {:>6} {:>5} {:>4} {:>4} | {:>7} {:>6} {:>7} {:>5} | {:>5.1}% {:>5.1}%",
            w.name,
            r.benign,
            r.soft_failure,
            r.sdc,
            r.hang,
            r.signals[0],
            r.signals[1],
            r.signals[2],
            r.signals[3],
            100.0 * r.latency_fraction_within(10),
            100.0 * r.latency_fraction_within(50),
        );
    }
    println!(
        "\npaper shape check: soft failures are dominated by SIGSEGV, and the\n\
         vast majority manifest within 50 dynamic instructions — the two\n\
         observations CARE's design rests on (paper §2.1.2)."
    );
}
