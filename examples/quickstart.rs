//! Quickstart: protect a tiny program with CARE, corrupt an index register
//! mid-run, and watch Safeguard repair the crash.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use care::prelude::*;
use tinyir::builder::ModuleBuilder;
use tinyir::{Ty, Value};

fn main() {
    // 1. A small program with a real address computation:
    //    sum = Σ table[3*i + 1]  for i in 0..n
    let mut mb = ModuleBuilder::new("quickstart", "quickstart.c");
    let table = mb.global_init(
        "table",
        Ty::I64,
        256,
        tinyir::GlobalInit::I64s((0..256).collect()),
    );
    mb.define("main", vec![Ty::I64], Some(Ty::I64), |fb| {
        let acc = fb.alloca(Ty::I64, 1);
        fb.store(Value::i64(0), acc);
        fb.for_loop(Value::i64(0), fb.arg(0), |fb, i| {
            let i3 = fb.mul(i, Value::i64(3), Ty::I64);
            let idx = fb.add(i3, Value::i64(1), Ty::I64);
            let v = fb.load_elem(fb.global(table), idx, Ty::I64);
            let a = fb.load(acc, Ty::I64);
            let s = fb.add(a, v, Ty::I64);
            fb.store(s, acc);
        });
        let r = fb.load(acc, Ty::I64);
        fb.ret(Some(r));
    });
    let module = mb.finish();

    // 2. Compile with CARE at -O1: Armor builds one recovery kernel per
    //    protected memory access and a recovery table keyed by the debug
    //    tuple of each access.
    let app = care::compile(&module, OptLevel::O1);
    println!(
        "compiled: {} recovery kernels, {}-byte recovery table",
        app.armor.stats.num_kernels,
        app.armor.table.encoded_size()
    );

    let n = 50u64;
    let expected: i64 = (0..n as i64).map(|i| 3 * i + 1).sum();

    // 3. Fault-free run under protection (Safeguard is dormant).
    let (mut process, mut sg) = care::protected_process(&app, &[]);
    process.start("main", &[n]);
    match run_protected(&mut process, &mut sg, 8) {
        ProtectedExit::Completed { result, recoveries, .. } => {
            println!(
                "fault-free run: result = {} (expected {expected}), recoveries = {recoveries}",
                result.unwrap() as i64
            );
        }
        other => panic!("unexpected: {other:?}"),
    }

    // 4. Faulty run: stop right after the instruction that computes the
    //    array index on its 20th execution and flip a high bit of its
    //    destination register — the classic transient-fault scenario.
    let fid = app.machine.func_by_name("main").unwrap();
    let mf = &app.machine.funcs[fid.0 as usize];
    let (mem_idx, mem_op) = mf
        .instrs
        .iter()
        .enumerate()
        .find_map(|(i, inst)| {
            inst.mem_operand()
                .filter(|m| m.index.is_some())
                .map(|m| (i, *m))
        })
        .expect("an indexed memory operand");
    let idx_reg = mem_op.index.unwrap();
    let def_idx = mf.instrs[..mem_idx]
        .iter()
        .rposition(|inst| inst.dest_reg() == Some(idx_reg))
        .expect("index-defining instruction");

    let (mut process, mut sg) = care::protected_process(&app, &[]);
    process.start("main", &[n]);
    process.break_at = Some((ModuleId(0), fid, def_idx, 20));
    assert_eq!(process.run(), RunExit::BreakHit);
    let clean = process.read_reg(idx_reg);
    process.write_reg(idx_reg, clean ^ (1 << 41));
    println!(
        "injected: flipped bit 41 of {idx_reg} ({clean:#x} -> {:#x})",
        clean ^ (1 << 41)
    );

    match run_protected(&mut process, &mut sg, 8) {
        ProtectedExit::Completed { result, recoveries, recovery_ms } => {
            println!(
                "faulty run: result = {} (expected {expected}), \
                 recovered {recoveries}x in {recovery_ms:.1} ms (modelled)",
                result.unwrap() as i64
            );
            assert_eq!(result.unwrap() as i64, expected, "output must be exact");
        }
        other => panic!("recovery failed: {other:?}"),
    }
    println!(
        "safeguard stats: {} activations, {} recovered",
        sg.stats.activations, sg.stats.recovered
    );
}
