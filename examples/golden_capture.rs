//! Golden-constant capture utility for `tests/golden.rs`.
//!
//! Prints the fixed-seed campaign aggregates (and wall-clock throughput) the
//! golden-equivalence test asserts against. The checked-in constants were
//! captured from the pre-fork engine (process rebuild + prefix
//! re-simulation); re-run this only when an *intentional* semantic change to
//! the campaign engine requires refreshing them, and say so in the commit.
//!
//! ```sh
//! cargo run --release --example golden_capture
//! ```

use faultsim::{Campaign, CampaignConfig, FaultModel};
use opt::OptLevel;
use std::time::Instant;

fn coverage_cfg(injections: usize, seed: u64) -> CampaignConfig {
    CampaignConfig {
        injections,
        model: FaultModel::SingleBit,
        seed,
        evaluate_care: true,
        app_only: true,
        ..CampaignConfig::default()
    }
}

fn summarize(name: &str, r: &faultsim::CampaignReport) {
    let mut declines: Vec<(String, usize)> =
        r.declines.iter().map(|(k, v)| (k.to_string(), *v)).collect();
    declines.sort();
    let mean_ms = r.mean_recovery_ms();
    println!(
        "GOLDEN {name}: total={} benign={} soft={} sdc={} hang={}",
        r.total(),
        r.benign,
        r.soft_failure,
        r.sdc,
        r.hang
    );
    println!("GOLDEN {name}: signals={:?} latency={:?}", r.signals, r.latency_buckets);
    println!(
        "GOLDEN {name}: care_eval={} covered={} survived_sdc={} recoveries={} mean_ms={:.6}",
        r.care_evaluated, r.care_covered, r.care_survived_with_sdc, r.total_recoveries, mean_ms
    );
    println!("GOLDEN {name}: declines={declines:?}");
}

fn main() {
    // --- golden-equivalence baseline: hpccg, seed 0xCA2E, 100 injections --
    let w = workloads::hpccg::build(3, 2);
    let app = care::compile(&w.module, OptLevel::O1);
    let campaign = Campaign::prepare(&w, app, vec![]);
    let r = campaign.run(&coverage_cfg(100, 0xCA2E));
    summarize("hpccg_small_o1_care_n100", &r);

    // --- throughput baseline: CARE coverage campaigns, default workloads --
    for w in [workloads::hpccg::default(), workloads::gtcp::default()] {
        let name = w.name;
        let app = care::compile(&w.module, OptLevel::O1);
        let campaign = Campaign::prepare(&w, app, vec![]);
        let n = 200;
        let t0 = Instant::now();
        let r = campaign.run(&coverage_cfg(n, 7));
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "THROUGHPUT {name}: n={n} classified={} care_eval={} wall={dt:.2}s inj_per_sec={:.2}",
            r.total(),
            r.care_evaluated,
            n as f64 / dt
        );
    }
}
