//! Shared-library recovery (paper §5.5): the REAL level-1 BLAS compiled as
//! `libblas.so`, driven by an sblat1-style tester, with faults injected
//! into *both* modules. Safeguard keys library faults by `PC − base`
//! through `dladdr`, exactly as the paper describes.
//!
//! ```sh
//! cargo run --release --example blas_library_recovery
//! ```

use care::prelude::*;
use faultsim::{Campaign, CampaignConfig, Outcome, Signal};

fn main() {
    let setup = workloads::blas::setup();
    let lib = care::compile(&setup.lib, OptLevel::O0);
    let driver = care::compile(&setup.driver.module, OptLevel::O0);
    println!(
        "libblas: {} routines, {} recovery kernels\nsblat1 driver: {} recovery kernels",
        setup.lib.funcs.len(),
        lib.armor.stats.num_kernels,
        driver.armor.stats.num_kernels,
    );

    let campaign = Campaign::prepare(&setup.driver, driver.clone(), vec![lib.clone()]);
    let cfg = CampaignConfig {
        injections: 400,
        evaluate_care: true,
        app_only: false, // library code is a target too
        seed: 0xB1A5,
        ..CampaignConfig::default()
    };

    let mut lib_segv = 0;
    let mut lib_covered = 0;
    let mut drv_segv = 0;
    let mut drv_covered = 0;
    let mut first_lib_shown = false;
    for i in 0..cfg.injections {
        let Some(rec) = campaign.run_one(&cfg, i) else { continue };
        if rec.outcome != Outcome::SoftFailure(Signal::Segv) {
            continue;
        }
        let in_lib = rec.point.module.0 == 1;
        let Some(cr) = rec.care else { continue };
        if in_lib {
            lib_segv += 1;
            lib_covered += cr.covered as usize;
            if cr.covered && !first_lib_shown {
                first_lib_shown = true;
                println!(
                    "recovered a fault inside libblas (func {:?}, inst {}): \
                     {} activation(s), {:.1} ms",
                    rec.point.func, rec.point.inst, cr.recoveries, cr.recovery_ms
                );
            }
        } else {
            drv_segv += 1;
            drv_covered += cr.covered as usize;
        }
    }
    println!(
        "coverage in libblas : {lib_covered}/{lib_segv} ({:.1}%)",
        100.0 * lib_covered as f64 / lib_segv.max(1) as f64
    );
    println!(
        "coverage in sblat1  : {drv_covered}/{drv_segv} ({:.1}%)",
        100.0 * drv_covered as f64 / drv_segv.max(1) as f64
    );
    let overall = (lib_covered + drv_covered) as f64 / (lib_segv + drv_segv).max(1) as f64;
    println!("overall             : {:.1}% (paper: ~83%)", 100.0 * overall);
}
