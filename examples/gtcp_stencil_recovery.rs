//! GTC-P stencil recovery: the paper's flagship workload (Figure 2) run
//! under fault injection with CARE protection.
//!
//! Samples injection points from a Pin-style execution profile until one
//! produces a SIGSEGV, then shows Safeguard's recovery and verifies the
//! final physics output is bit-identical to the golden run.
//!
//! ```sh
//! cargo run --release --example gtcp_stencil_recovery
//! ```

use care::prelude::*;
use faultsim::{Campaign, CampaignConfig, Outcome, Signal};

fn main() {
    let workload = workloads::gtcp::default();
    println!(
        "GTC-P: {} functions, {} memory-access instructions",
        workload.module.funcs.len(),
        workload.module.mem_access_count()
    );

    for level in [OptLevel::O0, OptLevel::O1] {
        let app = care::compile(&workload.module, level);
        println!(
            "\n[{level}] {} recovery kernels, avg {:.1} IR instructions each",
            app.armor.stats.num_kernels,
            app.armor.stats.avg_kernel_instrs()
        );
        let campaign = Campaign::prepare(&workload, app, vec![]);
        let cfg = CampaignConfig {
            injections: 400,
            evaluate_care: true,
            app_only: true,
            seed: 0x61C9,
            ..CampaignConfig::default()
        };

        // Walk injections until we see both a recovered and (if any) an
        // unrecovered SIGSEGV, reporting what happened.
        let mut shown_covered = false;
        let mut shown_declined = false;
        let mut segv = 0usize;
        let mut covered = 0usize;
        for i in 0..cfg.injections {
            let Some(rec) = campaign.run_one(&cfg, i) else { continue };
            if rec.outcome != Outcome::SoftFailure(Signal::Segv) {
                continue;
            }
            segv += 1;
            let Some(care_res) = rec.care else { continue };
            if care_res.covered {
                covered += 1;
                if !shown_covered {
                    shown_covered = true;
                    println!(
                        "  recovered injection #{i}: {:?} after {} dynamic instructions of latency, \
                         {} Safeguard activation(s), {:.1} ms modelled",
                        rec.target,
                        rec.latency.unwrap_or(0),
                        care_res.recoveries,
                        care_res.recovery_ms
                    );
                }
            } else if !shown_declined {
                shown_declined = true;
                println!(
                    "  declined injection #{i}: {:?} -> {} (contaminated kernel input)",
                    rec.target,
                    care_res
                        .decline
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "?".into())
                );
            }
        }
        println!(
            "  coverage: {covered}/{segv} SIGSEGV faults recovered ({:.1}%)",
            100.0 * covered as f64 / segv.max(1) as f64
        );
    }
}
