//! CI smoke test: the `careserve` campaign server, end to end in one
//! process.
//!
//! Spawns a loopback server, submits a 30-injection CARE coverage campaign
//! on HPCCG over the wire, and asserts the wire report is bit-identical to
//! running the same spec directly on [`faultsim::Campaign`] — the golden
//! equivalence the service promises. A second submit of the same spec must
//! hit the server's prepared-campaign cache, and the shutdown must drain
//! cleanly with no in-flight budget. Exits nonzero (assert) if any of that
//! regresses.
//!
//! ```sh
//! cargo run --release --example smoke_server
//! ```

use careserve::{submit, CampaignServer, JobSpec, ServerConfig, WorkloadSel};
use faultsim::{Campaign, CampaignConfig};

fn main() {
    let mut handle = CampaignServer::start(ServerConfig::default()).expect("bind loopback");
    let spec = JobSpec {
        workload: WorkloadSel::Named { name: "hpccg".to_string(), params: vec![] },
        injections: 30,
        seed: 0x5300CE,
        ..JobSpec::default()
    };

    // The same campaign, run directly.
    let workload = careserve::proto::resolve_workload(&spec.workload).expect("hpccg resolves");
    let app = care::compile(&workload.module, spec.opt);
    let campaign = Campaign::prepare(&workload, app, vec![]);
    let local = campaign.run(&CampaignConfig {
        injections: spec.injections,
        model: spec.model,
        seed: spec.seed,
        evaluate_care: spec.evaluate_care,
        app_only: spec.app_only,
        keep_records: spec.records,
        scheduler: spec.scheduler,
        engine: spec.engine,
        ..CampaignConfig::default()
    });
    assert!(local.care_covered > 0, "smoke campaign must cover at least one fault");

    let first = submit(handle.addr(), &spec).expect("first submit");
    assert_eq!(first.report, local, "wire report diverged from the local run");
    let second = submit(handle.addr(), &spec).expect("second submit");
    assert_eq!(second.report, local, "cached campaign diverged from the local run");

    let stats = handle.stats();
    assert_eq!(stats.jobs_completed, 2, "both jobs must complete");
    assert_eq!(stats.cache_misses, 1, "second job must reuse the prepared campaign");
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.inflight_budget, 0, "budget leaked after completion");
    handle.shutdown();

    println!(
        "smoke_server: {} injections served bit-identical to the local run \
         ({} covered / {} evaluated), cache hit on resubmit, clean shutdown",
        spec.injections, local.care_covered, local.care_evaluated,
    );
}
