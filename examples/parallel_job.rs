//! The §5.4 experiment at full 512-rank × 6-thread scale: a real SimISA
//! run of GTC-P on rank 0 supplies the recovery events; the BSP virtual-
//! time simulator shows CARE's dozens-of-milliseconds repair being
//! absorbed by the next barrier, against checkpoint/restart baselines that
//! pay tens of seconds.
//!
//! ```sh
//! cargo run --release --example parallel_job
//! ```

use cluster::{simulate_fault_free, simulate_faulty, ClusterConfig, Resilience};
use opt::OptLevel;

fn main() {
    // Rank 0 for real: inject until Safeguard recovers a SIGSEGV.
    let w = workloads::gtcp::default();
    println!("searching for a CARE-recoverable fault on rank 0 (GTC-P)...");
    let r0 = cluster::rank0::run_rank0_with_fault(&w, OptLevel::O0, 0x3072, 300)
        .expect("recoverable fault within 300 attempts");
    println!(
        "rank 0: injection #{} recovered with {} Safeguard activation(s), {:.1} ms total\n",
        r0.injection_index, r0.recoveries, r0.recovery_ms
    );

    let cfg = ClusterConfig::default(); // 512 ranks x 6 threads, 100 steps
    let base = simulate_fault_free(&cfg);
    println!(
        "cluster: {} ranks x {} threads, {} BSP timesteps",
        cfg.ranks, cfg.threads_per_rank, cfg.timesteps
    );
    println!("fault-free makespan      : {:>9.2} s", base.makespan_ms / 1000.0);

    let care = simulate_faulty(
        &cfg,
        cfg.timesteps / 2,
        &Resilience::Care { events: vec![(cfg.timesteps / 2, r0.recovery_ms)] },
    );
    println!(
        "with fault + CARE        : {:>9.2} s  (overhead {:+.3} s — absorbed by the barrier)",
        care.makespan_ms / 1000.0,
        care.overhead_ms / 1000.0
    );

    for interval in [20u64, 50, 75] {
        let cr = simulate_faulty(
            &cfg,
            cfg.timesteps / 2,
            &Resilience::CheckpointRestart {
                interval,
                write_ms: 800.0,
                load_ms: 6600.0,
                requeue_ms: 0.0,
            },
        );
        println!(
            "with fault + C/R every {:>2}: {:>9.2} s  (failure recovery alone: {:.2} s)",
            interval,
            cr.makespan_ms / 1000.0,
            cr.restart_ms / 1000.0
        );
    }
    let none = simulate_faulty(&cfg, cfg.timesteps / 2, &Resilience::None {
        requeue_ms: 120_000.0,
    });
    println!(
        "with fault, no protection: {:>9.2} s  (requeue + full rerun)",
        none.makespan_ms / 1000.0
    );
}
