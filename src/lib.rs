//! Root package for the CARE reproduction workspace.
//!
//! This package exists to host the cross-crate integration tests in `tests/`
//! and the runnable examples in `examples/`. The actual library surface lives
//! in the `care` crate (re-exported here for convenience).
pub use care::*;
